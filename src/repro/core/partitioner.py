"""The end-to-end flow: the paper's Figure 2 as a public API.

:class:`TemporalPartitioner` wires together the whole pipeline:

1. heuristically estimate the number of segments ``N`` (list
   scheduling based, :mod:`repro.schedule.estimator`) unless given;
2. compute ASAP/ALAP mobility ranges (inside
   :class:`~repro.core.spec.ProblemSpec`);
3. formulate the 0-1 model (:mod:`repro.core.formulation`);
4. solve it — with the in-repo branch and bound under a selectable
   branching rule, or with SciPy's HiGHS MILP;
5. decode and *verify* the design.

Every stage's statistics are kept on the returned
:class:`PartitionOutcome`, so the benchmark harness can print the
paper's Var/Const/RunTime/Feasible columns directly.

Graceful degradation
--------------------
An irrecoverable exact solve — LP backend chain exhausted, the
solver's failure budget tripped, a decode/verify inconsistency, or a
search limit expiring truly empty-handed — never raises out of
:meth:`TemporalPartitioner.partition_spec`.  Instead the flow falls
back to the heuristic baselines (:func:`~repro.baselines.level_partition`
then :func:`~repro.baselines.greedy_partition` + list scheduler),
verifies the fallback design with the same independent
:func:`~repro.core.verify.verify_design`, and returns a
:class:`PartitionOutcome` explicitly marked ``degraded=True`` with the
cause and the fallback name in telemetry — a usable answer with honest
provenance, exactly the production posture the ROADMAP asks for.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.baselines import greedy_partition, level_partition
from repro.errors import (
    CheckpointError,
    DecodeError,
    ReproError,
    SolverError,
    VerificationError,
)
from repro.graph.taskgraph import TaskGraph
from repro.ilp.analysis.diagnostics import InfeasibilityCertificate
from repro.ilp.branch_bound import BranchAndBound, BranchAndBoundConfig
from repro.ilp.branching import BranchingRule, make_rule
from repro.ilp.milp_backend import solve_milp_scipy
from repro.ilp.resilience import FaultPlan
from repro.ilp.solution import SolveStats, SolveStatus, relative_gap
from repro.library.catalogs import default_library, mix_from_string
from repro.library.components import Allocation, ComponentLibrary
from repro.schedule.estimator import estimate_num_segments
from repro.target.fpga import FPGADevice, device_catalog
from repro.target.memory import ScratchMemory
from repro.core.decode import decode_solution
from repro.core.formulation import FormulationOptions, build_model, model_size_report
from repro.core.precheck import precheck_spec
from repro.core.result import PartitionedDesign
from repro.core.spec import ProblemSpec
from repro.core.verify import verify_design


@dataclass(frozen=True)
class PartitionOutcome:
    """Everything produced by one partitioning run.

    ``design`` is present for OPTIMAL runs and for FEASIBLE runs (a
    search limit expired but an incumbent was in hand — ``gap`` then
    says how far from proven-optimal it might be); it has always passed
    :func:`~repro.core.verify.verify_design`.

    ``degraded`` marks outcomes where the exact solve irrecoverably
    failed: when a heuristic baseline rescued the run, ``fallback``
    names it (``"level"`` or ``"greedy"``) and ``design`` is its
    verified output; when even the baselines gave up, ``design`` is
    ``None`` but the run still returns (never raises).
    ``degradation_cause`` says why the exact path was abandoned.
    """

    status: SolveStatus
    spec: ProblemSpec
    design: "Optional[PartitionedDesign]"
    objective: "Optional[float]"
    model_stats: "Dict[str, object]"
    solve_stats: SolveStats
    wall_time_s: float
    bound: "Optional[float]" = None
    gap: "Optional[float]" = None
    certificate: "Optional[InfeasibilityCertificate]" = None
    degraded: bool = False
    fallback: "Optional[str]" = None
    degradation_cause: "Optional[str]" = None

    @property
    def feasible(self) -> bool:
        """The paper's "Feasible" column: did an implementation exist?"""
        return self.design is not None

    @property
    def hit_limit(self) -> bool:
        """Whether a time/node limit cut the search short.

        True for FEASIBLE (incumbent in hand) as well as bare
        TIMEOUT/NODE_LIMIT outcomes — the paper's ">7200" notion.
        Certificate rejections (precheck or presolve) are proofs, not
        limits, and an ``lp_failure_limit`` abort is a fault, not a
        limit (it shows up in ``degraded`` instead).
        """
        return self.solve_stats.stop_reason not in (
            "exhausted", "precheck_infeasible", "presolve_infeasible",
            "lp_failure_limit",
        )

    def summary_row(self) -> "Dict[str, object]":
        """One row in the shape of the paper's result tables."""
        return {
            "graph": self.spec.graph.name,
            "tasks": len(self.spec.graph.tasks),
            "opers": self.spec.graph.num_operations,
            "N": self.spec.n_partitions,
            "L": self.spec.relaxation,
            "vars": self.model_stats["vars"],
            "consts": self.model_stats["constraints"],
            "runtime_s": round(self.wall_time_s, 3),
            "status": self.status.value,
            "feasible": self.feasible,
            "objective": self.objective,
            "gap": self.gap,
            "degraded": self.degraded,
            "fallback": self.fallback,
            "degradation_cause": self.degradation_cause,
        }

    def telemetry(self) -> "Dict[str, object]":
        """Per-run solve-telemetry record (see DESIGN.md for the schema)."""
        return {
            "schema": "repro.solve_telemetry/v7",
            "graph": self.spec.graph.name,
            "n_partitions": self.spec.n_partitions,
            "relaxation": self.spec.relaxation,
            "device": self.spec.device.name,
            "status": self.status.value,
            "feasible": self.feasible,
            "hit_limit": self.hit_limit,
            "objective": self.objective,
            "bound": self.bound,
            "gap": self.gap,
            "wall_time_s": self.wall_time_s,
            "degraded": self.degraded,
            "fallback": self.fallback,
            "degradation_cause": self.degradation_cause,
            "model": dict(self.model_stats),
            "solve": self.solve_stats.as_dict(),
            "certificate": (
                None if self.certificate is None else self.certificate.as_dict()
            ),
        }


class TemporalPartitioner:
    """Combined temporal partitioning and synthesis, end to end.

    Parameters
    ----------
    library:
        Component library (defaults to the XC4000-class catalog); used
        for FU-mix parsing and the segment estimator.
    device:
        Target FPGA (defaults to ``xc4010``).
    memory:
        Scratch memory; defaults to unbounded-for-the-spec (the
        objective still minimizes traffic).
    options:
        Formulation options (tightened Glover model by default).
    branching:
        Branching-rule name (``"paper"``, ``"first"``,
        ``"most-fractional"``, ``"pseudo-random"``) or a rule instance.
    backend:
        ``"bnb"`` for the in-repo branch and bound (default),
        ``"milp"`` for SciPy HiGHS.
    time_limit_s / node_limit:
        Search limits passed to the backend.  Expiry with an incumbent
        yields a FEASIBLE outcome carrying the proven bound and gap.
    plain_search:
        When True, run the branch and bound *without* its SOS1
        propagation and exact leaf sub-solve — the raw 1998-style
        search the formulation benchmarks (Tables 1-2) measure.
        Also disables presolve (the 1998 flow had none).
    presolve:
        When True (default), run the structural prechecks
        (:mod:`repro.core.precheck`, eqs. 3 and 11 plus cycle
        detection) before formulating, and the static presolve pass
        (:mod:`repro.ilp.analysis`) before the branch and bound.  A
        certificate ends the run with an INFEASIBLE outcome carrying
        it — no LP is ever solved.  Only the ``"bnb"`` backend
        presolves the model; prechecks apply to both backends.
    on_node / on_incumbent:
        Optional progress callbacks forwarded to the branch and bound
        (see :class:`~repro.ilp.branch_bound.BranchAndBoundConfig`);
        the CLI's ``--verbose-solve`` live trace is built on these.
        Ignored by the ``"milp"`` backend.
    callback_every:
        Node-callback decimation factor (1 = every node).
    resilient:
        When True (default), the ``"bnb"`` backend solves its LP
        relaxations through the validating retry/fallback chain
        (:class:`~repro.ilp.resilience.ResilientLPBackend`, SciPy
        HiGHS then the in-repo simplex) instead of a bare backend.
        Fault-free runs are result-identical (asserted by property
        test); faulty runs recover or degrade instead of crashing.
        ``plain_search`` disables it (the 1998 flow had no armor).
    chaos:
        Optional :class:`~repro.ilp.resilience.FaultPlan`: wrap the
        LP backend(s) in seeded fault injection — the CLI's
        ``--chaos-*`` surface.  Implies infeasible double-checking on
        the resilient chain.  Only meaningful with ``backend="bnb"``.
    lp_backend_chain:
        Override the resilient chain's ``(name, callable)`` backends
        (tests use this to simulate wholly dead solver stacks).
    proof_path:
        When set (``bnb`` backend only), the branch and bound appends a
        certificate for every tree event to this ``repro.bnb_proof/v1``
        JSONL artifact, independently verifiable with ``repro audit``
        (see :mod:`repro.ilp.certify` and DESIGN.md §12).  Proof mode
        disables the node prober and exact leaf sub-solve (their
        closures carry no dual evidence), so node counts differ from an
        unlogged run; statuses and objectives do not.  The
        ``solve.proof`` telemetry block summarizes the artifact.
    checkpoint_path / checkpoint_every:
        Forwarded to the branch and bound: periodic atomic
        serialization of the search state, and — when the file already
        exists and matches the model — automatic resume from it.
    degrade:
        When True (default), irrecoverable exact solves fall back to
        the heuristic baselines instead of raising/returning empty
        (see module docstring).  When False, solver faults raise as
        before (the cross-check suites want the crash).
    cuts:
        When True (``bnb`` backend only), run the root cutting-plane
        loop (:mod:`repro.ilp.cuts`) before the tree search: knapsack
        cover, conflict-clique, and implied-bound cuts are separated
        against the root LP in rounds, each exact-validated by the
        independent checker before acceptance, and appended to the
        model every layer of the stack sees.  In proof mode the cuts
        ride into the log as typed ``cut`` records (schema
        ``repro.bnb_proof/v2``) that ``repro audit`` re-proves.  The
        ``solve.cuts`` telemetry block reports what was added.
    heuristics:
        When True (``bnb`` backend only), enable the primal heuristics
        (:mod:`repro.ilp.heuristics`): LP-guided diving at the root and
        every ``dive_every`` nodes, plus 1-opt incumbent polishing.
        Every heuristic point is audited (decode +
        :func:`~repro.core.verify.verify_design`) before it may become
        the incumbent; the ``solve.heuristics`` telemetry block counts
        dives, polishes, and audit rejections.
    lp_kernel:
        ``"incremental"`` (default) puts the persistent-model
        warm-starting LP kernel
        (:class:`~repro.ilp.incremental.IncrementalLPSolver`) at the
        head of the ``"bnb"`` backend's LP chain — HiGHS with
        change-bounds + dual-simplex warm starts when ``highspy`` is
        importable, an equivalent bounds-mutating ``linprog`` path
        otherwise — with the stateless backends behind it as fallbacks.
        ``"scipy"`` keeps the historical per-call
        :func:`~repro.ilp.scipy_backend.solve_lp_scipy` chain.
        ``plain_search`` and an explicit ``lp_backend_chain`` both
        override this.  Fault-free results are identical either way
        (property-tested); only speed and ``solve.kernel`` telemetry
        differ.
    workers:
        ``> 1`` shards the branch-and-bound frontier across that many
        spawn-isolated worker processes
        (:class:`~repro.ilp.parallel.ParallelBranchAndBound`): shared
        incumbent, work stealing, crash recovery, identical optima.
        Only the ``"bnb"`` backend parallelizes, and a custom
        ``lp_backend_chain`` cannot be shipped to workers (chains are
        closures) — both combinations raise.  The ``solve.parallel``
        telemetry block records the fleet's behaviour.
    parallel_replay:
        Deterministic-replay mode for ``workers > 1``: one chunk in
        flight at a time, round-robin — the solve signature
        (status/objective/nodes) is then exactly the sequential one.
        A testing mode; it forfeits the wall-clock speedup.
    parallel:
        Full :class:`~repro.ilp.parallel.ParallelConfig` override for
        chunk budgets, timeouts, and chaos knobs; ``workers`` /
        ``parallel_replay`` are ignored when this is given.
    """

    def __init__(
        self,
        library: "Optional[ComponentLibrary]" = None,
        device: "Optional[FPGADevice]" = None,
        memory: "Optional[ScratchMemory]" = None,
        options: "Optional[FormulationOptions]" = None,
        branching: "Union[str, BranchingRule]" = "paper",
        backend: str = "bnb",
        time_limit_s: "Optional[float]" = None,
        node_limit: "Optional[int]" = None,
        plain_search: bool = False,
        presolve: bool = True,
        on_node=None,
        on_incumbent=None,
        callback_every: int = 1,
        resilient: bool = True,
        chaos: "Optional[FaultPlan]" = None,
        lp_backend_chain=None,
        checkpoint_path: "Optional[str]" = None,
        checkpoint_every: int = 256,
        proof_path: "Optional[str]" = None,
        degrade: bool = True,
        cuts: bool = False,
        heuristics: bool = False,
        lp_kernel: str = "incremental",
        workers: int = 1,
        parallel_replay: bool = False,
        parallel: "Optional[object]" = None,
    ) -> None:
        if backend not in ("bnb", "milp"):
            raise ReproError(f"unknown backend {backend!r}; use 'bnb' or 'milp'")
        if lp_kernel not in ("incremental", "scipy"):
            raise ReproError(
                f"unknown lp_kernel {lp_kernel!r}; use 'incremental' or 'scipy'"
            )
        if parallel is not None:
            workers = parallel.workers
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if proof_path is not None and backend != "bnb":
            raise ReproError(
                "proof_path requires backend='bnb' (the milp backend is "
                "a single HiGHS call with no tree to certify)"
            )
        if workers > 1 and backend != "bnb":
            raise ReproError(
                "workers > 1 requires backend='bnb' "
                "(the milp backend is a single HiGHS call)"
            )
        if (cuts or heuristics) and backend != "bnb":
            raise ReproError(
                "cuts/heuristics require backend='bnb' (the milp "
                "backend is a single opaque HiGHS call)"
            )
        if workers > 1 and lp_backend_chain is not None:
            raise ReproError(
                "workers > 1 cannot ship a custom lp_backend_chain to "
                "worker processes (backend chains are closures); use "
                "lp_kernel/resilient/chaos, which workers rebuild locally"
            )
        self.library = library if library is not None else default_library()
        self.device = device if device is not None else device_catalog()["xc4010"]
        self.memory = memory
        self.options = options if options is not None else FormulationOptions()
        self.branching: BranchingRule = (
            make_rule(branching) if isinstance(branching, str) else branching
        )
        self.backend = backend
        self.time_limit_s = time_limit_s
        self.node_limit = node_limit
        self.plain_search = plain_search
        self.presolve = presolve
        self.on_node = on_node
        self.on_incumbent = on_incumbent
        self.callback_every = callback_every
        self.resilient = resilient
        self.chaos = chaos
        self.lp_backend_chain = lp_backend_chain
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.proof_path = proof_path
        self.degrade = degrade
        self.cuts = cuts
        self.heuristics = heuristics
        self.lp_kernel = lp_kernel
        self.workers = workers
        self.parallel_replay = parallel_replay
        self.parallel = parallel

    # ------------------------------------------------------------------

    def make_spec(
        self,
        graph: TaskGraph,
        allocation: "Union[Allocation, str]",
        n_partitions: "Optional[int]" = None,
        relaxation: int = 0,
    ) -> ProblemSpec:
        """Steps 1-2 of the flow: resolve inputs into a ProblemSpec."""
        if isinstance(allocation, str):
            allocation = mix_from_string(allocation, self.library)
        memory = self.memory
        if memory is None:
            memory = ScratchMemory.unbounded_for(graph.total_bandwidth())
        if n_partitions is None:
            n_partitions = estimate_num_segments(graph, self.library, self.device)
        return ProblemSpec.create(
            graph=graph,
            allocation=allocation,
            device=self.device,
            memory=memory,
            n_partitions=n_partitions,
            relaxation=relaxation,
        )

    def partition(
        self,
        graph: TaskGraph,
        allocation: "Union[Allocation, str]",
        n_partitions: "Optional[int]" = None,
        relaxation: int = 0,
    ) -> PartitionOutcome:
        """Run the full flow on a specification.

        Returns a :class:`PartitionOutcome`; infeasibility and timeouts
        are *statuses* on the outcome, not exceptions (matching how the
        paper's tables report them).  Only malformed inputs raise.
        """
        spec = self.make_spec(graph, allocation, n_partitions, relaxation)
        return self.partition_spec(spec)

    def partition_spec(self, spec: ProblemSpec) -> PartitionOutcome:
        """Steps 3-5 of the flow, on an already-built spec."""
        start = time.monotonic()
        if self.presolve and not self.plain_search:
            certificates = precheck_spec(spec)
            if certificates:
                model, space = build_model(spec, self.options)
                stats = SolveStats(stop_reason="precheck_infeasible")
                stats.wall_time_s = time.monotonic() - start
                return PartitionOutcome(
                    status=SolveStatus.INFEASIBLE,
                    spec=spec,
                    design=None,
                    objective=None,
                    model_stats=model_size_report(model, space),
                    solve_stats=stats,
                    wall_time_s=stats.wall_time_s,
                    certificate=certificates[0],
                )
        model, space = build_model(spec, self.options)
        model_stats = model_size_report(model, space)
        allow_degrade = self.degrade and not self.plain_search

        try:
            result, certificate = self._solve(model, spec, space)
        except SolverError as exc:
            if not allow_degrade:
                raise
            return self._degraded_outcome(
                spec, model_stats, start,
                cause="solver_error", detail=str(exc),
                solve_stats=SolveStats(stop_reason="solver_error"),
            )

        design: "Optional[PartitionedDesign]" = None
        objective: "Optional[float]" = None
        if result.has_solution:
            try:
                design = decode_solution(spec, space, result)
                objective = design.communication_cost()
                verify_design(design, expected_objective=result.objective)
            except (DecodeError, VerificationError) as exc:
                # The solver's answer failed the independent audit —
                # never ship it; fall back instead of propagating.
                if not allow_degrade:
                    raise
                cause = (
                    "decode_error" if isinstance(exc, DecodeError)
                    else "verification_error"
                )
                return self._degraded_outcome(
                    spec, model_stats, start, cause=cause, detail=str(exc),
                    solve_stats=result.stats, bound=result.bound,
                )

        if allow_degrade and design is None and result.status in (
            SolveStatus.ERROR, SolveStatus.TIMEOUT, SolveStatus.NODE_LIMIT
        ):
            cause = (
                "lp_failure_limit"
                if result.stats.stop_reason == "lp_failure_limit"
                else "search_empty_handed"
            )
            return self._degraded_outcome(
                spec, model_stats, start, cause=cause,
                solve_stats=result.stats, status=result.status,
                bound=result.bound,
            )

        return PartitionOutcome(
            status=result.status,
            spec=spec,
            design=design,
            objective=objective,
            model_stats=model_stats,
            solve_stats=result.stats,
            wall_time_s=time.monotonic() - start,
            bound=result.bound,
            gap=result.gap,
            certificate=certificate,
        )

    def _degraded_outcome(
        self,
        spec: ProblemSpec,
        model_stats: "Dict[str, object]",
        start: float,
        cause: str,
        solve_stats: SolveStats,
        detail: "Optional[str]" = None,
        status: SolveStatus = SolveStatus.ERROR,
        bound: "Optional[float]" = None,
    ) -> PartitionOutcome:
        """Heuristic-baseline rescue: the never-raise last line of defense.

        Tries :func:`~repro.baselines.level_partition` then
        :func:`~repro.baselines.greedy_partition`, verifies whichever
        succeeds with the same independent audit as the exact path, and
        returns it as a FEASIBLE-but-``degraded`` outcome.  When even
        the baselines come up empty the outcome keeps the exact path's
        failure status with ``design=None`` — still a return, never a
        raise.  A proven ``bound`` inherited from the aborted exact
        search still yields an honest ``gap`` for the fallback design.
        """
        design: "Optional[PartitionedDesign]" = None
        fallback: "Optional[str]" = None
        for name, baseline in (("level", level_partition),
                               ("greedy", greedy_partition)):
            try:
                candidate = baseline(spec)
                if candidate is None:
                    continue
                verify_design(candidate)
            except ReproError:
                continue
            design, fallback = candidate, name
            break
        objective = design.communication_cost() if design is not None else None
        gap = (
            relative_gap(objective, bound)
            if objective is not None and bound is not None
            else None
        )
        degradation_cause = cause if not detail else f"{cause}: {detail[:200]}"
        return PartitionOutcome(
            status=SolveStatus.FEASIBLE if design is not None else status,
            spec=spec,
            design=design,
            objective=objective,
            model_stats=model_stats,
            solve_stats=solve_stats,
            wall_time_s=time.monotonic() - start,
            bound=bound,
            gap=gap,
            degraded=True,
            fallback=fallback,
            degradation_cause=degradation_cause,
        )

    # ------------------------------------------------------------------

    def _make_lp_backend(self):
        """LP backend for the bnb path: bare, chaos-wrapped, or armored.

        Delegates to :func:`repro.core.parallel_support.make_lp_backend`
        — the same assembly the parallel workers run, so a
        ``workers > 1`` fleet solves through exactly the stack the
        coordinator would have used alone (see that function for the
        kernel/resilience/chaos layering).
        """
        from repro.core.parallel_support import make_lp_backend

        return make_lp_backend(
            lp_kernel=self.lp_kernel,
            resilient=self.resilient,
            chaos=self.chaos,
            plain_search=self.plain_search,
            chain=self.lp_backend_chain,
        )

    def _solve(self, model, spec, space):
        """Solve the model; returns (MilpResult, presolve certificate)."""
        if self.backend == "milp":
            return solve_milp_scipy(model, time_limit_s=self.time_limit_s), None
        from repro.core.parallel_support import make_incumbent_auditor

        prober = None
        leaf_solver = None
        if not self.plain_search:
            from repro.core.leafsolve import make_leaf_solver
            from repro.core.probe import make_slot_prober

            prober = make_slot_prober(spec, space)
            leaf_solver = make_leaf_solver(spec, space)
        config = BranchAndBoundConfig(
            time_limit_s=self.time_limit_s,
            node_limit=self.node_limit,
            objective_is_integral=True,
            propagate_sos1=not self.plain_search,
            leaf_subsolve=not self.plain_search,
            node_prober=prober,
            leaf_solver=leaf_solver,
            on_node=self.on_node,
            on_incumbent=self.on_incumbent,
            callback_every=self.callback_every,
            presolve=self.presolve and not self.plain_search,
            lp_backend=self._make_lp_backend(),
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            reduced_cost_fixing=not self.plain_search,
            cuts=self.cuts,
            heuristics=self.heuristics,
            incumbent_auditor=make_incumbent_auditor(spec, space),
            proof_path=self.proof_path,
        )
        solver = self._make_solver(model, spec, config)
        if self.checkpoint_path is not None and os.path.exists(self.checkpoint_path):
            try:
                return solver.resume(self.checkpoint_path), solver.presolve_certificate
            except CheckpointError as exc:
                # Truncated, corrupt, foreign-schema, or
                # fingerprint-mismatched checkpoint: a fresh solve is
                # always safe (periodic saves overwrite the bad file),
                # but silent fallback would hide that hours of saved
                # search state were just discarded — say so.
                warnings.warn(
                    f"ignoring unusable checkpoint "
                    f"{self.checkpoint_path} ({exc.cause}): {exc}; "
                    f"solving from scratch",
                    RuntimeWarning,
                    stacklevel=2,
                )
                solver = self._make_solver(model, spec, config)
        return solver.solve(), solver.presolve_certificate

    def _make_solver(self, model, spec, config) -> BranchAndBound:
        """Sequential solver, or the parallel coordinator for workers>1.

        The coordinator ships only picklable ingredients (spec,
        options, rule, kernel/chaos knobs); each worker rebuilds the
        model, prober, leaf solver, and LP stack from them via
        :func:`repro.core.parallel_support.build_worker_context`, and
        the model fingerprint certifies the rebuild matched.
        """
        if self.workers <= 1:
            return BranchAndBound(model, rule=self.branching, config=config)
        from repro.core.parallel_support import build_worker_context
        from repro.ilp.parallel import ParallelBranchAndBound, ParallelConfig

        parallel = self.parallel
        if parallel is None:
            parallel = ParallelConfig(
                workers=self.workers, replay=self.parallel_replay
            )
        return ParallelBranchAndBound(
            model,
            rule=self.branching,
            config=config,
            parallel=parallel,
            context_builder=build_worker_context,
            worker_args={
                "spec": spec,
                "options": self.options,
                "rule": self.branching,
                "plain_search": self.plain_search,
                "presolve": self.presolve and not self.plain_search,
                "resilient": self.resilient,
                "lp_kernel": self.lp_kernel,
                "chaos": self.chaos,
            },
        )
