"""The end-to-end flow: the paper's Figure 2 as a public API.

:class:`TemporalPartitioner` wires together the whole pipeline:

1. heuristically estimate the number of segments ``N`` (list
   scheduling based, :mod:`repro.schedule.estimator`) unless given;
2. compute ASAP/ALAP mobility ranges (inside
   :class:`~repro.core.spec.ProblemSpec`);
3. formulate the 0-1 model (:mod:`repro.core.formulation`);
4. solve it — with the in-repo branch and bound under a selectable
   branching rule, or with SciPy's HiGHS MILP;
5. decode and *verify* the design.

Every stage's statistics are kept on the returned
:class:`PartitionOutcome`, so the benchmark harness can print the
paper's Var/Const/RunTime/Feasible columns directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.errors import ReproError
from repro.graph.taskgraph import TaskGraph
from repro.ilp.analysis.diagnostics import InfeasibilityCertificate
from repro.ilp.branch_bound import BranchAndBound, BranchAndBoundConfig
from repro.ilp.branching import BranchingRule, make_rule
from repro.ilp.milp_backend import solve_milp_scipy
from repro.ilp.solution import SolveStats, SolveStatus
from repro.library.catalogs import default_library, mix_from_string
from repro.library.components import Allocation, ComponentLibrary
from repro.schedule.estimator import estimate_num_segments
from repro.target.fpga import FPGADevice, device_catalog
from repro.target.memory import ScratchMemory
from repro.core.decode import decode_solution
from repro.core.formulation import FormulationOptions, build_model, model_size_report
from repro.core.precheck import precheck_spec
from repro.core.result import PartitionedDesign
from repro.core.spec import ProblemSpec
from repro.core.verify import verify_design


@dataclass(frozen=True)
class PartitionOutcome:
    """Everything produced by one partitioning run.

    ``design`` is present for OPTIMAL runs and for FEASIBLE runs (a
    search limit expired but an incumbent was in hand — ``gap`` then
    says how far from proven-optimal it might be); it has always passed
    :func:`~repro.core.verify.verify_design`.
    """

    status: SolveStatus
    spec: ProblemSpec
    design: "Optional[PartitionedDesign]"
    objective: "Optional[float]"
    model_stats: "Dict[str, object]"
    solve_stats: SolveStats
    wall_time_s: float
    bound: "Optional[float]" = None
    gap: "Optional[float]" = None
    certificate: "Optional[InfeasibilityCertificate]" = None

    @property
    def feasible(self) -> bool:
        """The paper's "Feasible" column: did an implementation exist?"""
        return self.design is not None

    @property
    def hit_limit(self) -> bool:
        """Whether a time/node limit cut the search short.

        True for FEASIBLE (incumbent in hand) as well as bare
        TIMEOUT/NODE_LIMIT outcomes — the paper's ">7200" notion.
        Certificate rejections (precheck or presolve) are proofs, not
        limits.
        """
        return self.solve_stats.stop_reason not in (
            "exhausted", "precheck_infeasible", "presolve_infeasible"
        )

    def summary_row(self) -> "Dict[str, object]":
        """One row in the shape of the paper's result tables."""
        return {
            "graph": self.spec.graph.name,
            "tasks": len(self.spec.graph.tasks),
            "opers": self.spec.graph.num_operations,
            "N": self.spec.n_partitions,
            "L": self.spec.relaxation,
            "vars": self.model_stats["vars"],
            "consts": self.model_stats["constraints"],
            "runtime_s": round(self.wall_time_s, 3),
            "status": self.status.value,
            "feasible": self.feasible,
            "objective": self.objective,
            "gap": self.gap,
        }

    def telemetry(self) -> "Dict[str, object]":
        """Per-run solve-telemetry record (see DESIGN.md for the schema)."""
        return {
            "schema": "repro.solve_telemetry/v2",
            "graph": self.spec.graph.name,
            "n_partitions": self.spec.n_partitions,
            "relaxation": self.spec.relaxation,
            "device": self.spec.device.name,
            "status": self.status.value,
            "feasible": self.feasible,
            "hit_limit": self.hit_limit,
            "objective": self.objective,
            "bound": self.bound,
            "gap": self.gap,
            "wall_time_s": self.wall_time_s,
            "model": dict(self.model_stats),
            "solve": self.solve_stats.as_dict(),
            "certificate": (
                None if self.certificate is None else self.certificate.as_dict()
            ),
        }


class TemporalPartitioner:
    """Combined temporal partitioning and synthesis, end to end.

    Parameters
    ----------
    library:
        Component library (defaults to the XC4000-class catalog); used
        for FU-mix parsing and the segment estimator.
    device:
        Target FPGA (defaults to ``xc4010``).
    memory:
        Scratch memory; defaults to unbounded-for-the-spec (the
        objective still minimizes traffic).
    options:
        Formulation options (tightened Glover model by default).
    branching:
        Branching-rule name (``"paper"``, ``"first"``,
        ``"most-fractional"``, ``"pseudo-random"``) or a rule instance.
    backend:
        ``"bnb"`` for the in-repo branch and bound (default),
        ``"milp"`` for SciPy HiGHS.
    time_limit_s / node_limit:
        Search limits passed to the backend.  Expiry with an incumbent
        yields a FEASIBLE outcome carrying the proven bound and gap.
    plain_search:
        When True, run the branch and bound *without* its SOS1
        propagation and exact leaf sub-solve — the raw 1998-style
        search the formulation benchmarks (Tables 1-2) measure.
        Also disables presolve (the 1998 flow had none).
    presolve:
        When True (default), run the structural prechecks
        (:mod:`repro.core.precheck`, eqs. 3 and 11 plus cycle
        detection) before formulating, and the static presolve pass
        (:mod:`repro.ilp.analysis`) before the branch and bound.  A
        certificate ends the run with an INFEASIBLE outcome carrying
        it — no LP is ever solved.  Only the ``"bnb"`` backend
        presolves the model; prechecks apply to both backends.
    on_node / on_incumbent:
        Optional progress callbacks forwarded to the branch and bound
        (see :class:`~repro.ilp.branch_bound.BranchAndBoundConfig`);
        the CLI's ``--verbose-solve`` live trace is built on these.
        Ignored by the ``"milp"`` backend.
    callback_every:
        Node-callback decimation factor (1 = every node).
    """

    def __init__(
        self,
        library: "Optional[ComponentLibrary]" = None,
        device: "Optional[FPGADevice]" = None,
        memory: "Optional[ScratchMemory]" = None,
        options: "Optional[FormulationOptions]" = None,
        branching: "Union[str, BranchingRule]" = "paper",
        backend: str = "bnb",
        time_limit_s: "Optional[float]" = None,
        node_limit: "Optional[int]" = None,
        plain_search: bool = False,
        presolve: bool = True,
        on_node=None,
        on_incumbent=None,
        callback_every: int = 1,
    ) -> None:
        if backend not in ("bnb", "milp"):
            raise ReproError(f"unknown backend {backend!r}; use 'bnb' or 'milp'")
        self.library = library if library is not None else default_library()
        self.device = device if device is not None else device_catalog()["xc4010"]
        self.memory = memory
        self.options = options if options is not None else FormulationOptions()
        self.branching: BranchingRule = (
            make_rule(branching) if isinstance(branching, str) else branching
        )
        self.backend = backend
        self.time_limit_s = time_limit_s
        self.node_limit = node_limit
        self.plain_search = plain_search
        self.presolve = presolve
        self.on_node = on_node
        self.on_incumbent = on_incumbent
        self.callback_every = callback_every

    # ------------------------------------------------------------------

    def make_spec(
        self,
        graph: TaskGraph,
        allocation: "Union[Allocation, str]",
        n_partitions: "Optional[int]" = None,
        relaxation: int = 0,
    ) -> ProblemSpec:
        """Steps 1-2 of the flow: resolve inputs into a ProblemSpec."""
        if isinstance(allocation, str):
            allocation = mix_from_string(allocation, self.library)
        memory = self.memory
        if memory is None:
            memory = ScratchMemory.unbounded_for(graph.total_bandwidth())
        if n_partitions is None:
            n_partitions = estimate_num_segments(graph, self.library, self.device)
        return ProblemSpec.create(
            graph=graph,
            allocation=allocation,
            device=self.device,
            memory=memory,
            n_partitions=n_partitions,
            relaxation=relaxation,
        )

    def partition(
        self,
        graph: TaskGraph,
        allocation: "Union[Allocation, str]",
        n_partitions: "Optional[int]" = None,
        relaxation: int = 0,
    ) -> PartitionOutcome:
        """Run the full flow on a specification.

        Returns a :class:`PartitionOutcome`; infeasibility and timeouts
        are *statuses* on the outcome, not exceptions (matching how the
        paper's tables report them).  Only malformed inputs raise.
        """
        spec = self.make_spec(graph, allocation, n_partitions, relaxation)
        return self.partition_spec(spec)

    def partition_spec(self, spec: ProblemSpec) -> PartitionOutcome:
        """Steps 3-5 of the flow, on an already-built spec."""
        start = time.monotonic()
        if self.presolve and not self.plain_search:
            certificates = precheck_spec(spec)
            if certificates:
                model, space = build_model(spec, self.options)
                stats = SolveStats(stop_reason="precheck_infeasible")
                stats.wall_time_s = time.monotonic() - start
                return PartitionOutcome(
                    status=SolveStatus.INFEASIBLE,
                    spec=spec,
                    design=None,
                    objective=None,
                    model_stats=model_size_report(model, space),
                    solve_stats=stats,
                    wall_time_s=stats.wall_time_s,
                    certificate=certificates[0],
                )
        model, space = build_model(spec, self.options)
        result, certificate = self._solve(model, spec, space)
        wall = time.monotonic() - start

        design: "Optional[PartitionedDesign]" = None
        objective: "Optional[float]" = None
        if result.has_solution:
            design = decode_solution(spec, space, result)
            objective = design.communication_cost()
            verify_design(design, expected_objective=result.objective)

        return PartitionOutcome(
            status=result.status,
            spec=spec,
            design=design,
            objective=objective,
            model_stats=model_size_report(model, space),
            solve_stats=result.stats,
            wall_time_s=wall,
            bound=result.bound,
            gap=result.gap,
            certificate=certificate,
        )

    # ------------------------------------------------------------------

    def _solve(self, model, spec, space):
        """Solve the model; returns (MilpResult, presolve certificate)."""
        if self.backend == "milp":
            return solve_milp_scipy(model, time_limit_s=self.time_limit_s), None
        prober = None
        leaf_solver = None
        if not self.plain_search:
            from repro.core.leafsolve import make_leaf_solver
            from repro.core.probe import make_slot_prober

            prober = make_slot_prober(spec, space)
            leaf_solver = make_leaf_solver(spec, space)
        config = BranchAndBoundConfig(
            time_limit_s=self.time_limit_s,
            node_limit=self.node_limit,
            objective_is_integral=True,
            propagate_sos1=not self.plain_search,
            leaf_subsolve=not self.plain_search,
            node_prober=prober,
            leaf_solver=leaf_solver,
            on_node=self.on_node,
            on_incumbent=self.on_incumbent,
            callback_every=self.callback_every,
            presolve=self.presolve and not self.plain_search,
        )
        solver = BranchAndBound(model, rule=self.branching, config=config)
        return solver.solve(), solver.presolve_certificate
