"""Functional-unit models, instances, libraries and allocations.

Terminology (matching the paper):

* an **FU model** is a characterized library component — "a 16-bit
  ripple-carry adder costing 18 function generators with 25 ns delay";
* the exploration set **F** is an ordered collection of **FU
  instances** of those models — "2 adders, 2 multipliers and 1
  subtracter" — which the formulation's ``x[i,j,k]`` variables bind
  operations onto.  Not every instance need be *used* in every
  partition: the ``u[p,k]`` variables express per-partition usage, and
  only used instances count against the device capacity (eq. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro._validation import require_identifier, require_positive
from repro.errors import LibraryError
from repro.graph.operations import OpType


@dataclass(frozen=True)
class FUModel:
    """A characterized functional-unit type from the component library.

    Parameters
    ----------
    name:
        Library-unique model identifier (e.g. ``"add16"``).
    optypes:
        The operation types this model can execute.  A multi-function
        ALU lists several; the paper's design explorations ("can we use
        a non-pipelined and a pipelined multiplier in the same
        design?") are expressed by putting several models covering the
        same optype into one allocation.
    fg_cost:
        FPGA function generators consumed — the paper's ``FG(k)``.
    delay_ns:
        Propagation delay; used for clock estimation and by the
        chaining extension.
    latency:
        Control steps from operand consumption to result availability.
        The base model of the paper assumes 1; the multicycle extension
        (:mod:`repro.extensions.multicycle`) supports larger values.
    pipelined:
        Whether a new operation may start every control step even when
        ``latency > 1``.
    """

    name: str
    optypes: FrozenSet[OpType]
    fg_cost: int
    delay_ns: float = 10.0
    latency: int = 1
    pipelined: bool = False

    def __post_init__(self) -> None:
        require_identifier(self.name, LibraryError, "FU model name")
        if not self.optypes:
            raise LibraryError(f"FU model {self.name!r} executes no operation types")
        if not all(isinstance(t, OpType) for t in self.optypes):
            raise LibraryError(f"FU model {self.name!r} has non-OpType entries")
        if not isinstance(self.fg_cost, int) or isinstance(self.fg_cost, bool):
            raise LibraryError(f"FU model {self.name!r}: fg_cost must be an int")
        if self.fg_cost <= 0:
            raise LibraryError(
                f"FU model {self.name!r}: fg_cost must be positive, got {self.fg_cost}"
            )
        require_positive(self.delay_ns, LibraryError, f"{self.name} delay_ns")
        if not isinstance(self.latency, int) or self.latency < 1:
            raise LibraryError(f"FU model {self.name!r}: latency must be an int >= 1")

    def executes(self, optype: OpType) -> bool:
        """Whether this model can execute operations of ``optype``."""
        return optype in self.optypes


@dataclass(frozen=True)
class FUInstance:
    """One concrete functional unit in the exploration set ``F``.

    The formulation's index ``k`` ranges over these instances.  Two
    instances of the same model are interchangeable in cost but distinct
    in binding, which is exactly what lets the model discover solutions
    like "partition 1 uses 1 multiplier and 5 adders, partition 2 uses 2
    multipliers and 2 adders" from a shared exploration set.
    """

    name: str
    model: FUModel

    def __post_init__(self) -> None:
        require_identifier(self.name, LibraryError, "FU instance name")

    @property
    def fg_cost(self) -> int:
        """Function-generator cost of the underlying model (``FG(k)``)."""
        return self.model.fg_cost

    def executes(self, optype: OpType) -> bool:
        """Whether this instance can execute operations of ``optype``."""
        return self.model.executes(optype)


class ComponentLibrary:
    """A named catalog of FU models.

    Lookup helpers answer the two questions the flow needs: which models
    implement a given operation type (``Fu(i)`` construction), and what
    a model costs (``FG(k)``).
    """

    def __init__(self, name: str = "library") -> None:
        require_identifier(name, LibraryError, "library name")
        self.name = name
        self._models: "Dict[str, FUModel]" = {}

    def add_model(self, model: FUModel) -> FUModel:
        """Register a model; redefinition with different data is an error."""
        existing = self._models.get(model.name)
        if existing is not None:
            if existing != model:
                raise LibraryError(
                    f"FU model {model.name!r} redefined with different parameters"
                )
            return existing
        self._models[model.name] = model
        return model

    @property
    def models(self) -> Tuple[FUModel, ...]:
        """All models, in registration order."""
        return tuple(self._models.values())

    def model(self, name: str) -> FUModel:
        """Look up a model by name."""
        try:
            return self._models[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r} has no FU model {name!r}"
            ) from None

    def models_for(self, optype: OpType) -> "Tuple[FUModel, ...]":
        """All models that can execute ``optype``, registration order."""
        return tuple(m for m in self._models.values() if m.executes(optype))

    def cheapest_model_for(self, optype: OpType) -> FUModel:
        """The lowest-FG-cost model executing ``optype``.

        Raises :class:`LibraryError` when no model covers the type —
        the specification is then unimplementable with this library.
        """
        candidates = self.models_for(optype)
        if not candidates:
            raise LibraryError(
                f"library {self.name!r} has no FU model executing {optype}"
            )
        return min(candidates, key=lambda m: m.fg_cost)

    def covers(self, optypes: "Iterable[OpType]") -> bool:
        """Whether every type in ``optypes`` has at least one model."""
        return all(self.models_for(t) for t in optypes)


class Allocation:
    """The ordered exploration set ``F`` of FU instances.

    The order is significant: it fixes the index ``k`` of each instance
    in the ILP, and therefore the tie-breaking of the branching
    heuristic.  Instances of the same model are canonically named
    ``<model>_<n>``.
    """

    def __init__(self, instances: "Sequence[FUInstance]") -> None:
        if not instances:
            raise LibraryError("allocation must contain at least one FU instance")
        names = [fu.name for fu in instances]
        if len(set(names)) != len(names):
            raise LibraryError(f"duplicate FU instance names in allocation: {names}")
        self._instances: "Tuple[FUInstance, ...]" = tuple(instances)

    @classmethod
    def from_counts(
        cls, library: ComponentLibrary, counts: "Mapping[str, int]"
    ) -> "Allocation":
        """Build an allocation from ``{model_name: instance_count}``.

        Iteration order of ``counts`` determines instance order, so use
        an ordered mapping when index order matters.
        """
        instances: "List[FUInstance]" = []
        for model_name, count in counts.items():
            if not isinstance(count, int) or count < 1:
                raise LibraryError(
                    f"instance count for {model_name!r} must be an int >= 1"
                )
            model = library.model(model_name)
            for idx in range(count):
                instances.append(FUInstance(f"{model_name}_{idx + 1}", model))
        return cls(instances)

    @property
    def instances(self) -> "Tuple[FUInstance, ...]":
        """All FU instances, in index order (the formulation's ``k``)."""
        return self._instances

    @property
    def names(self) -> "Tuple[str, ...]":
        """Instance names in index order."""
        return tuple(fu.name for fu in self._instances)

    def instance(self, name: str) -> FUInstance:
        """Look up an instance by name."""
        for fu in self._instances:
            if fu.name == name:
                return fu
        raise LibraryError(f"allocation has no FU instance {name!r}")

    def instances_for(self, optype: OpType) -> "Tuple[FUInstance, ...]":
        """All instances that can execute ``optype`` (``Fu(i)``)."""
        return tuple(fu for fu in self._instances if fu.executes(optype))

    def total_fg_cost(self) -> int:
        """Summed FG cost of all instances (cost if all were used at once)."""
        return sum(fu.fg_cost for fu in self._instances)

    def count_by_model(self) -> "Dict[str, int]":
        """Instance count per model name."""
        counts: "Dict[str, int]" = {}
        for fu in self._instances:
            counts[fu.model.name] = counts.get(fu.model.name, 0) + 1
        return counts

    def covers(self, optypes: "Iterable[OpType]") -> bool:
        """Whether every operation type has at least one instance."""
        return all(self.instances_for(t) for t in optypes)

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self):
        return iter(self._instances)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mix = "+".join(f"{c}x{m}" for m, c in sorted(self.count_by_model().items()))
        return f"Allocation({mix})"
