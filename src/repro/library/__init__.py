"""Component library: functional-unit models and exploration allocations.

The paper assumes "a component library consisting of various functional
units which can execute the operations in the specification", each
characterized by delay and FPGA resource (function-generator) cost.
This package provides:

* :class:`~repro.library.components.FUModel` — a characterized FU type;
* :class:`~repro.library.components.FUInstance` — one concrete unit in
  the exploration set ``F`` of the formulation;
* :class:`~repro.library.components.ComponentLibrary` — the catalog;
* :class:`~repro.library.components.Allocation` — the ordered set ``F``
  of FU instances made available to scheduling/binding;
* :mod:`~repro.library.catalogs` — a default XC4000-class catalog and
  the paper's "2A+2M+1S"-style mix notation.
"""

from repro.library.components import (
    Allocation,
    ComponentLibrary,
    FUInstance,
    FUModel,
)
from repro.library.catalogs import default_library, mix_from_string

__all__ = [
    "FUModel",
    "FUInstance",
    "ComponentLibrary",
    "Allocation",
    "default_library",
    "mix_from_string",
]
