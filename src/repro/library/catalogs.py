"""Default component catalogs and the paper's mix notation.

The paper characterizes components against Xilinx XC4000-class parts:
FPGA resources are *function generators* (two 4-input LUTs per CLB),
and FG costs of datapath operators at 16 bits fall roughly where the
:func:`default_library` places them (a ripple-carry adder needs one FG
per bit plus carry handling; an array multiplier is an order of
magnitude larger).  Absolute values only have to be *mutually
consistent* — they enter the model solely through eq. 11,
``alpha * sum(u[p,k] * FG(k)) <= C``.

The result tables of the paper describe explorations as ``"2A+2M+1S"``
(2 adders, 2 multipliers, 1 subtracter); :func:`mix_from_string` parses
exactly that notation into an :class:`~repro.library.components.Allocation`.
"""

from __future__ import annotations

import re
from typing import Dict

from repro.errors import LibraryError
from repro.graph.operations import OpType
from repro.library.components import Allocation, ComponentLibrary, FUModel

#: Mix-notation letters -> default-library model names.
MIX_LETTERS: "Dict[str, str]" = {
    "A": "add16",
    "M": "mul16",
    "S": "sub16",
    "D": "div16",
    "C": "cmp16",
    "L": "alu16",
}


def default_library() -> ComponentLibrary:
    """The default XC4000-class characterized component library.

    Models
    ------
    ========  ==========================  =====  ========  =======
    name      executes                    FG     delay_ns  latency
    ========  ==========================  =====  ========  =======
    add16     ADD                         18     24.0      1
    sub16     SUB                         18     24.0      1
    alu16     ADD, SUB, CMP               26     28.0      1
    mul16     MUL                         176    52.0      1
    mul16p    MUL (pipelined)             190    30.0      2
    div16     DIV                         210    96.0      1
    cmp16     CMP                         10     16.0      1
    shift16   SHIFT                       12     14.0      1
    logic16   LOGIC                       8      10.0      1
    ========  ==========================  =====  ========  =======

    ``mul16p`` exists to exercise the design exploration the paper
    highlights against Gebotys' model: a pipelined and a non-pipelined
    multiplier coexisting in one allocation.
    """
    lib = ComponentLibrary("xc4000-default")
    lib.add_model(FUModel("add16", frozenset({OpType.ADD}), 18, 24.0))
    lib.add_model(FUModel("sub16", frozenset({OpType.SUB}), 18, 24.0))
    lib.add_model(
        FUModel("alu16", frozenset({OpType.ADD, OpType.SUB, OpType.CMP}), 26, 28.0)
    )
    lib.add_model(FUModel("mul16", frozenset({OpType.MUL}), 176, 52.0))
    lib.add_model(
        FUModel("mul16p", frozenset({OpType.MUL}), 190, 30.0, latency=2, pipelined=True)
    )
    lib.add_model(FUModel("div16", frozenset({OpType.DIV}), 210, 96.0))
    lib.add_model(FUModel("cmp16", frozenset({OpType.CMP}), 10, 16.0))
    lib.add_model(FUModel("shift16", frozenset({OpType.SHIFT}), 12, 14.0))
    lib.add_model(FUModel("logic16", frozenset({OpType.LOGIC}), 8, 10.0))
    return lib


_MIX_TERM = re.compile(r"^(\d+)([A-Za-z])$")


def mix_from_string(
    mix: str, library: "ComponentLibrary | None" = None
) -> Allocation:
    """Parse the paper's FU-mix notation, e.g. ``"2A+2M+1S"``.

    Each term is ``<count><letter>`` with letters defined in
    :data:`MIX_LETTERS`; terms are joined by ``+``.  The allocation's
    instance order follows the string left to right, so ``"2A+2M+1S"``
    yields ``add16_1, add16_2, mul16_1, mul16_2, sub16_1``.
    """
    if library is None:
        library = default_library()
    if not isinstance(mix, str) or not mix.strip():
        raise LibraryError(f"FU mix must be a non-empty string, got {mix!r}")
    counts: "Dict[str, int]" = {}
    for term in mix.strip().split("+"):
        match = _MIX_TERM.match(term.strip())
        if not match:
            raise LibraryError(
                f"bad FU mix term {term!r} (expected e.g. '2A'); full mix: {mix!r}"
            )
        count = int(match.group(1))
        letter = match.group(2).upper()
        if letter not in MIX_LETTERS:
            raise LibraryError(
                f"unknown FU mix letter {letter!r}; known: {sorted(MIX_LETTERS)}"
            )
        if count < 1:
            raise LibraryError(f"FU mix count must be >= 1 in term {term!r}")
        model_name = MIX_LETTERS[letter]
        counts[model_name] = counts.get(model_name, 0) + count
    return Allocation.from_counts(library, counts)
