"""Checkpoint/resume for branch-and-bound search state.

A killed process should restart where it died, not from scratch: the
paper's ">7200 s" rows are precisely runs whose work evaporated.  This
module serializes the whole resumable state of a
:class:`~repro.ilp.branch_bound.BranchAndBound` run to a versioned JSON
artifact:

* the **open-node frontier**, each node as *bound-override deltas*
  against the root bounds (the search only ever tightens per-variable
  bounds, so a node is fully determined by the handful of indices it
  changed — the artifact stays small even with thousands of open
  nodes);
* the **incumbent** (objective + value vector), if any;
* the :class:`~repro.ilp.solution.SolveStats` counters and elapsed
  wall time, so telemetry accumulates across restarts;
* the **root-LP snapshot** and the **reduced-cost bound box** (schema
  v2) — without them a resumed search would never again see a
  ``depth == 0`` node, silently losing reduced-cost fixing for the
  rest of the run;
* a **model fingerprint** (SHA-256 over every matrix of the compiled
  :class:`~repro.ilp.standard_form.StandardForm`), so resuming against
  a different model is rejected instead of silently corrupting the
  search.

The search is RNG-free by construction (every branching rule is a
deterministic function of the model and the LP values), so frontier +
incumbent + counters *is* the whole state: a resumed run explores
exactly the tree the killed run would have.

Writes go through the durable-artifact layer
(:func:`repro.artifacts.write_snapshot`): serialize to ``<path>.tmp``,
fsync, atomic rename, directory fsync, with a whole-file SHA-256
``digest`` sealed into the payload — so a crash mid-write leaves the
previous checkpoint intact and bit rot in a resting checkpoint is
detected (``cause="bad-digest"``) instead of silently corrupting a
resumed search.  Stale temps from crashed writes are swept (and
counted) into quarantine by :func:`sweep_checkpoint_temps` on resume.
"""

from __future__ import annotations

import hashlib
import math
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.errors import CheckpointError
from repro.ilp.standard_form import StandardForm

#: Artifact schema identifier written by this code; bump on any layout
#: change.  v2 added the root-LP snapshot and reduced-cost bound box
#: (both optional keys), fixing the resume path that silently disabled
#: reduced-cost fixing.
CHECKPOINT_SCHEMA = "repro.bnb_checkpoint/v2"

#: Schemas this code can read.  v1 artifacts simply lack the root-LP
#: keys; a v1 resume behaves exactly as before (fixing re-arms only if
#: the search re-encounters a root node, i.e. never) — correct, just
#: without the optimization the v2 writer preserves.
CHECKPOINT_SCHEMAS_READ = ("repro.bnb_checkpoint/v1", CHECKPOINT_SCHEMA)


def form_fingerprint(form: StandardForm) -> str:
    """SHA-256 fingerprint of a compiled standard form.

    Covers the objective, both constraint systems (structure and
    coefficients), bounds, and integrality — everything that defines
    the search space.
    """
    digest = hashlib.sha256()
    for arr in (
        form.c, form.b_ub, form.b_eq, form.lb, form.ub, form.integrality,
    ):
        digest.update(np.ascontiguousarray(arr, dtype=float).tobytes())
    for matrix in (form.a_ub, form.a_eq):
        digest.update(np.ascontiguousarray(matrix.data, dtype=float).tobytes())
        digest.update(np.ascontiguousarray(matrix.indices).tobytes())
        digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
    return digest.hexdigest()


def _finite_or_none(value: float) -> "Optional[float]":
    """JSON has no infinities; the root bound starts at -inf."""
    return float(value) if math.isfinite(value) else None


def encode_node(
    lb: "np.ndarray",
    ub: "np.ndarray",
    depth: int,
    bound: float,
    base_lb: "np.ndarray",
    base_ub: "np.ndarray",
    pid: "Optional[str]" = None,
) -> "Dict[str, object]":
    """One frontier node as deltas against the root bounds.

    ``pid`` is the node's proof-log id (proof mode only): it must
    survive the coordinator-worker round trip so the worker closes the
    node under the id the log opened it with.  Readers use
    ``entry.get("pid")`` — absent in artifacts written before proof
    logging existed, and ignored on checkpoint resume (the resume
    record re-ids the frontier).
    """
    lb_delta = {
        str(int(i)): float(lb[i]) for i in np.flatnonzero(lb != base_lb)
    }
    ub_delta = {
        str(int(i)): float(ub[i]) for i in np.flatnonzero(ub != base_ub)
    }
    entry: "Dict[str, object]" = {
        "depth": int(depth),
        "bound": _finite_or_none(bound),
        "lb": lb_delta,
        "ub": ub_delta,
    }
    if pid is not None:
        entry["pid"] = pid
    return entry


def decode_node(
    entry: "Dict[str, object]",
    base_lb: "np.ndarray",
    base_ub: "np.ndarray",
):
    """Invert :func:`encode_node`; returns ``(lb, ub, depth, bound)``."""
    lb = base_lb.copy()
    ub = base_ub.copy()
    for key, value in entry.get("lb", {}).items():
        lb[int(key)] = float(value)
    for key, value in entry.get("ub", {}).items():
        ub[int(key)] = float(value)
    bound = entry.get("bound")
    return (
        lb,
        ub,
        int(entry.get("depth", 0)),
        -math.inf if bound is None else float(bound),
    )


def write_checkpoint_atomic(path: "str | Path", payload: "Dict[str, object]") -> None:
    """Write ``payload`` durably via :func:`repro.artifacts.write_snapshot`.

    Temp-write, fsync, atomic ``os.replace``, directory fsync — plus a
    whole-file SHA-256 ``digest`` sealed into the payload so bit rot
    is detectable at resume time, not just torn writes.  A failed
    write raises :class:`~repro.errors.CheckpointError` (a
    :class:`~repro.errors.SolverError`, so the partitioner's
    degradation path rescues a solve whose checkpoint disk filled up
    instead of dying on an unhandled ``OSError``).
    """
    from repro.artifacts import write_snapshot
    from repro.errors import ArtifactError

    try:
        write_snapshot(Path(path), payload, digest=True, indent=1)
    except ArtifactError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path!s}: {exc}",
            path=str(path), cause=exc.cause,
        ) from exc


def sweep_checkpoint_temps(path: "str | Path") -> int:
    """Quarantine stale ``<path>*.tmp`` leftovers; returns the count.

    A crash between temp-write and rename strands a ``.tmp`` beside
    the checkpoint forever (nothing else ever looks at it) — resume
    sweeps them into ``<path>.quarantine/`` (cause ``stale-temp``,
    counted in the quarantine index) so run directories cannot
    accumulate unbounded debris.
    """
    from repro.artifacts import sweep_stale_temps

    return len(sweep_stale_temps(Path(path)))


def read_checkpoint(path: "str | Path") -> "Dict[str, object]":
    """Load and schema-check a checkpoint artifact.

    Raises :class:`~repro.errors.CheckpointError` (a
    :class:`~repro.errors.SolverError`) carrying the offending path and
    a machine-readable ``cause`` on a missing/unreadable file
    (``"unreadable"``), malformed or truncated JSON (``"not-json"`` —
    an empty file is this case too), a foreign/old schema
    (``"bad-schema"``), or a failed whole-file digest
    (``"bad-digest"`` — the JSON parses but its bytes rotted in place)
    — resuming from garbage must be loud and typed, never an unhandled
    ``json.JSONDecodeError``.
    """
    from repro.artifacts import read_snapshot
    from repro.errors import ArtifactError

    try:
        payload = read_snapshot(Path(path))
    except ArtifactError as exc:
        if exc.cause == "io":
            raise CheckpointError(
                f"cannot read checkpoint {path!s}: {exc.detail or exc}",
                path=str(path), cause="unreadable",
            ) from exc
        if exc.cause == "bad-digest":
            raise CheckpointError(
                f"checkpoint {path!s} failed its SHA-256 digest check "
                f"(bit rot or in-place tampering)",
                path=str(path), cause="bad-digest",
            ) from exc
        raise CheckpointError(
            f"checkpoint {path!s} is not valid JSON "
            f"(truncated or corrupt): {exc}",
            path=str(path), cause="not-json",
        ) from exc
    schema = payload.get("schema")
    if schema not in CHECKPOINT_SCHEMAS_READ:
        raise CheckpointError(
            f"checkpoint {path!s} has schema {schema!r}, "
            f"expected one of {CHECKPOINT_SCHEMAS_READ!r}",
            path=str(path), cause="bad-schema",
        )
    return payload


def values_to_json(values) -> "Optional[Dict[str, float]]":
    """Variable-index-keyed mapping -> JSON-safe string keys.

    Accepts any values mapping an :class:`~repro.ilp.solution.LPResult`
    may carry (plain dict or array-backed
    :class:`~repro.ilp.solution.ValueVector`) by normalizing through
    :func:`~repro.ilp.solution.plain_values`, keeping the serialized
    layout exactly the ``repro.bnb_checkpoint/v1`` one.
    """
    from repro.ilp.solution import plain_values

    plain = plain_values(values)
    if plain is None:
        return None
    return {str(k): v for k, v in plain.items()}


def values_from_json(values: "Optional[Dict[str, float]]") -> "Optional[Dict[int, float]]":
    """Inverse of :func:`values_to_json`."""
    if values is None:
        return None
    return {int(k): float(v) for k, v in values.items()}


def _bound_deltas(arr, base) -> "Dict[str, float]":
    return {str(int(i)): float(arr[i]) for i in np.flatnonzero(arr != base)}


def _apply_deltas(base, deltas) -> "np.ndarray":
    out = base.copy()
    for key, value in deltas.items():
        out[int(key)] = float(value)
    return out


def root_lp_to_json(root_lp, base_lb, base_ub) -> "Optional[Dict[str, object]]":
    """Serialize the root-LP snapshot ``(obj, reduced, lb, ub, x)``.

    The root bounds are delta-encoded like frontier nodes (they are the
    root bounds, so the deltas are normally empty); reduced costs and
    the primal point are dense per construction and stored as lists.
    """
    if root_lp is None:
        return None
    obj, reduced, lb, ub, x = root_lp
    return {
        "objective": float(obj),
        "reduced_costs": [float(v) for v in np.asarray(reduced, dtype=float)],
        "lb": _bound_deltas(lb, base_lb),
        "ub": _bound_deltas(ub, base_ub),
        "x": [float(v) for v in np.asarray(x, dtype=float)],
    }


def root_lp_from_json(entry, base_lb, base_ub) -> "Optional[tuple]":
    """Inverse of :func:`root_lp_to_json`; None passes through (v1)."""
    if entry is None:
        return None
    return (
        float(entry["objective"]),
        np.asarray(entry["reduced_costs"], dtype=float),
        _apply_deltas(base_lb, entry.get("lb", {})),
        _apply_deltas(base_ub, entry.get("ub", {})),
        np.asarray(entry["x"], dtype=float),
    )


def rc_box_to_json(rc_lb, rc_ub, base_lb, base_ub) -> "Optional[Dict[str, object]]":
    """Serialize the reduced-cost-tightened bound box as deltas.

    The box only ever moves inward from the root bounds, so like
    frontier nodes it is fully determined by the indices it changed.
    """
    if rc_lb is None or rc_ub is None:
        return None
    return {
        "lb": _bound_deltas(rc_lb, base_lb),
        "ub": _bound_deltas(rc_ub, base_ub),
    }


def rc_box_from_json(entry, base_lb, base_ub):
    """Inverse of :func:`rc_box_to_json`; returns ``(rc_lb, rc_ub)``."""
    if entry is None:
        return None, None
    return (
        _apply_deltas(base_lb, entry.get("lb", {})),
        _apply_deltas(base_ub, entry.get("ub", {})),
    )


def frontier_to_json(nodes, base_lb, base_ub) -> "List[Dict[str, object]]":
    """Serialize the open-node stack, preserving LIFO order.

    ``nodes`` is the solver's stack bottom-to-top; decoding in the same
    order reconstructs an identical stack, so the resumed search pops
    the exact node the killed search would have popped next.
    """
    return [
        encode_node(
            n.lb, n.ub, n.depth, n.bound, base_lb, base_ub,
            pid=getattr(n, "pid", None),
        )
        for n in nodes
    ]
