"""Deterministic fault injection for LP backends.

Every recovery path in the resilience layer is only as trustworthy as
the faults it has actually survived, so this module makes solver
failure *reproducible*: :class:`FaultInjectingBackend` wraps any LP
backend callable and, driven by a seeded RNG, injects one of six fault
classes on a configurable fraction of calls:

``raise``
    a :class:`~repro.errors.TransientSolverError` (retry-eligible, the
    shape of HiGHS iteration-limit / numerical-trouble statuses);
``fatal``
    a plain :class:`~repro.errors.SolverError` (non-transient — the
    resilient backend skips retries and falls through the chain);
``slow``
    an artificial delay before the real solve (deadline pressure);
``nan``
    the real solution with NaN poured into the value vector and
    objective (numerical breakdown that *returns* instead of raising);
``infeasible``
    a spurious INFEASIBLE verdict on a node that may be perfectly
    feasible (the nastiest class: undetectable from residuals, only a
    second opinion catches it);
``perturb``
    the real solution with the reported objective shifted down — a
    validated-but-wrong bound that would silently prune the optimum if
    trusted.

The same ``(seed, rate, kinds)`` triple always produces the same fault
sequence across runs, which is what lets the chaos tests assert exact
objective equality with the fault-free solve.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SolverError, TransientSolverError
from repro.ilp.solution import LPResult, SolveStatus

#: Every fault class the injector knows, in documentation order.
FAULT_KINDS: "Tuple[str, ...]" = (
    "raise", "fatal", "slow", "nan", "infeasible", "perturb",
)

#: Fault-log entries kept per injector (bounded so week-long chaos
#: soaks cannot eat memory).
_LOG_CAP = 1000


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and where.

    Parameters
    ----------
    kinds:
        Fault classes to draw from (uniformly) on each injected call.
    rate:
        Probability in ``[0, 1]`` that any given call is faulted.
    seed:
        RNG seed; the full fault sequence is a pure function of it.
    slow_s:
        Delay injected by the ``slow`` class.
    perturb:
        How far the ``perturb`` class shifts the reported objective
        *down* (making the bound look better than it is — the
        dangerous direction for a minimization prune test).
    limit:
        Maximum number of injections (``None`` = unlimited); lets a
        test fault exactly the first k calls.
    targets:
        ``"primary"`` faults only the first backend of the resilience
        chain (recovery via fallback must succeed); ``"all"`` faults
        every backend (recovery may be impossible — the graceful-
        degradation path's territory).
    """

    kinds: "Tuple[str, ...]" = ("raise",)
    rate: float = 0.25
    seed: int = 0
    slow_s: float = 0.02
    perturb: float = 1.0
    limit: "Optional[int]" = None
    targets: str = "primary"

    def __post_init__(self) -> None:
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {unknown}; choose from {FAULT_KINDS}"
            )
        if not self.kinds:
            raise ValueError("FaultPlan.kinds must name at least one class")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"FaultPlan.rate must be in [0, 1], got {self.rate}")
        if self.targets not in ("primary", "all"):
            raise ValueError(
                f"FaultPlan.targets must be 'primary' or 'all', got {self.targets!r}"
            )

    @classmethod
    def from_cli(
        cls,
        kinds: str,
        rate: float,
        seed: int,
        targets: str = "primary",
    ) -> "FaultPlan":
        """Parse the CLI's comma-separated ``--chaos-faults`` notation."""
        names = tuple(k.strip() for k in kinds.split(",") if k.strip())
        return cls(kinds=names, rate=rate, seed=seed, targets=targets)


@dataclass
class FaultRecord:
    """One injected fault, for the structured fault log."""

    call: int
    kind: str

    def as_dict(self) -> "Dict[str, object]":
        return {"call": self.call, "kind": self.kind}


class FaultInjectingBackend:
    """Wrap an LP backend callable with seeded fault injection.

    Drop-in compatible with the ``(form, lb_override, ub_override) ->
    LPResult`` backend contract.  Whether a call is faulted, and with
    which class, is decided by the plan's RNG *before* the inner solve,
    so the decision sequence is identical no matter how long each
    underlying solve takes.
    """

    def __init__(self, inner, plan: "Optional[FaultPlan]" = None,
                 name: str = "chaos") -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.name = name
        self.calls = 0
        self.injected = 0
        self.log: "List[FaultRecord]" = []
        self._rng = random.Random(self.plan.seed)
        self._sleep = time.sleep

    # ------------------------------------------------------------------

    def _draw(self) -> "Optional[str]":
        """Decide this call's fault class (or None), advancing the RNG.

        Both RNG draws happen unconditionally so the decision sequence
        depends only on the seed and call count, not on earlier
        outcomes like the injection limit.
        """
        roll = self._rng.random()
        kind = self._rng.choice(self.plan.kinds)
        if self.plan.limit is not None and self.injected >= self.plan.limit:
            return None
        return kind if roll < self.plan.rate else None

    def _record(self, kind: str) -> None:
        self.injected += 1
        if len(self.log) < _LOG_CAP:
            self.log.append(FaultRecord(call=self.calls, kind=kind))

    def __call__(self, form, lb_override=None, ub_override=None) -> LPResult:
        self.calls += 1
        kind = self._draw()
        if kind is None:
            return self.inner(form, lb_override, ub_override)
        self._record(kind)
        if kind == "raise":
            raise TransientSolverError(
                f"injected transient fault (call {self.calls})",
                backend=self.name,
                raw_status=-1,
            )
        if kind == "fatal":
            raise SolverError(f"injected fatal fault (call {self.calls})")
        if kind == "slow":
            self._sleep(self.plan.slow_s)
            return self.inner(form, lb_override, ub_override)
        if kind == "infeasible":
            return LPResult(status=SolveStatus.INFEASIBLE)
        result = self.inner(form, lb_override, ub_override)
        if result.status is not SolveStatus.OPTIMAL:
            return result  # nothing to corrupt
        assert result.values is not None and result.objective is not None
        if kind == "nan":
            poisoned = dict(result.values)
            victim = self._rng.choice(sorted(poisoned))
            poisoned[victim] = float("nan")
            return LPResult(
                status=SolveStatus.OPTIMAL,
                objective=float("nan"),
                values=poisoned,
            )
        # kind == "perturb": intact values, objective shifted down — a
        # plausible-looking bound that must not survive validation.
        return LPResult(
            status=SolveStatus.OPTIMAL,
            objective=result.objective - self.plan.perturb,
            values=dict(result.values),
        )

    # ------------------------------------------------------------------

    def telemetry(self) -> "Dict[str, object]":
        """Injection counters for the ``solve.resilience`` block."""
        by_kind: "Dict[str, int]" = {}
        for record in self.log:
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        return {
            "calls": self.calls,
            "injected": self.injected,
            "by_kind": by_kind,
            "plan": {
                "kinds": list(self.plan.kinds),
                "rate": self.plan.rate,
                "seed": self.plan.seed,
                "targets": self.plan.targets,
            },
        }
