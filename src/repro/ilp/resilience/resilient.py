"""Resilient LP solving: validate, retry, fall through a backend chain.

:class:`ResilientLPBackend` is a drop-in LP backend (same
``(form, lb_override, ub_override) -> LPResult`` contract as
:func:`~repro.ilp.scipy_backend.solve_lp_scipy`) that refuses to hand
the branch and bound a wrong answer:

* every OPTIMAL result is **validated** against the
  :class:`~repro.ilp.standard_form.StandardForm` — finite objective and
  values, variable bounds, constraint residuals within tolerance, and
  the reported objective against ``c'x`` (which catches a perturbed
  bound: a validated-but-wrong LP bound must never silently prune the
  optimum);
* :class:`~repro.errors.TransientSolverError` faults are retried on
  the same backend with bounded exponential backoff;
* non-transient faults and repeated validation failures **fall
  through** the backend chain (SciPy HiGHS first, the in-repo simplex
  as the dependency-free understudy);
* a backend that keeps failing is **quarantined** for the rest of the
  run so a dead solver does not add its timeout to every node;
* optionally, INFEASIBLE verdicts are **double-checked** with the next
  backend — residual validation cannot catch a spurious INFEASIBLE
  (there is no solution to check), so under fault injection a second
  opinion is the only defense against silently pruning feasible
  subtrees.

When the whole chain fails on one call the backend raises
:class:`~repro.errors.BackendChainExhausted`; the branch and bound
then treats the node as unresolvable (branch without pruning), and
the partitioner eventually degrades to a heuristic baseline.  Every
fault, retry, fallback, and quarantine lands in a structured log
surfaced through :meth:`ResilientLPBackend.resilience_telemetry`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    BackendChainExhausted,
    SolverError,
    TransientSolverError,
)
from repro.ilp.solution import LPResult, SolveStatus
from repro.ilp.standard_form import StandardForm

#: Fault-log entries kept per backend instance.
_LOG_CAP = 1000


def validate_lp_result(
    result: LPResult,
    form: StandardForm,
    lb: "np.ndarray",
    ub: "np.ndarray",
    tol: float = 1e-6,
) -> "Optional[str]":
    """Check an OPTIMAL LP result against the standard form.

    Returns ``None`` when the result is trustworthy, else a short
    reason string.  Non-OPTIMAL statuses validate trivially (they carry
    no solution to check; spurious INFEASIBLE needs a second opinion,
    see ``double_check_infeasible``).  All tolerances scale with the
    magnitude of the quantity checked so big-bandwidth models are not
    rejected for honest floating-point noise.
    """
    if result.status is not SolveStatus.OPTIMAL:
        return None
    if result.objective is None or result.values is None:
        return "OPTIMAL result without objective/values"
    if not math.isfinite(result.objective):
        return f"objective is not finite: {result.objective}"
    n = form.num_vars
    if len(result.values) < n:
        return f"solution has {len(result.values)} values for {n} variables"
    x = np.empty(n)
    for idx in range(n):
        x[idx] = result.values[idx]
    if not np.all(np.isfinite(x)):
        bad = int(np.flatnonzero(~np.isfinite(x))[0])
        return f"solution value for variable {bad} is not finite"
    bound_slack = tol * (1.0 + np.maximum(np.abs(lb), np.abs(ub)))
    bound_slack[~np.isfinite(bound_slack)] = np.inf
    if np.any(x < lb - bound_slack) or np.any(x > ub + bound_slack):
        return "solution violates variable bounds"
    if form.a_ub.shape[0]:
        resid = form.a_ub @ x - form.b_ub
        allowed = tol * (1.0 + np.abs(form.b_ub))
        if np.any(resid > allowed):
            row = int(np.argmax(resid - allowed))
            return f"inequality row {row} violated by {float(resid[row]):g}"
    if form.a_eq.shape[0]:
        resid = np.abs(form.a_eq @ x - form.b_eq)
        allowed = tol * (1.0 + np.abs(form.b_eq))
        if np.any(resid > allowed):
            row = int(np.argmax(resid - allowed))
            return f"equality row {row} off by {float(resid[row]):g}"
    recomputed = float(form.c @ x)
    if abs(recomputed - result.objective) > tol * (1.0 + abs(recomputed)):
        return (
            f"reported objective {result.objective:g} disagrees with "
            f"c'x = {recomputed:g}"
        )
    return None


@dataclass
class _BackendSlot:
    """One backend in the chain plus its health bookkeeping."""

    name: str
    fn: "Callable[..., LPResult]"
    calls: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False

    def as_dict(self) -> "Dict[str, object]":
        return {
            "name": self.name,
            "calls": self.calls,
            "failures": self.failures,
            "quarantined": self.quarantined,
        }


def default_backend_chain() -> "List[Tuple[str, Callable[..., LPResult]]]":
    """SciPy HiGHS first, the in-repo simplex as the fallback."""
    from repro.ilp.scipy_backend import solve_lp_scipy
    from repro.ilp.simplex import solve_lp_simplex

    return [("scipy-highs", solve_lp_scipy), ("simplex", solve_lp_simplex)]


class ResilientLPBackend:
    """Validating, retrying, falling-through LP backend chain.

    Parameters
    ----------
    backends:
        Ordered ``(name, callable)`` chain; defaults to
        :func:`default_backend_chain`.
    max_retries:
        Extra attempts per backend after a transient fault or a
        validation failure (non-transient faults skip retries).
    backoff_s / backoff_factor / max_backoff_s:
        Bounded exponential backoff between retries.  The defaults are
        deliberately tiny: LP nodes are milliseconds, and the point of
        backoff here is to outlive a *momentary* glitch, not a network
        partition.
    residual_tol:
        Tolerance for :func:`validate_lp_result`.
    quarantine_after:
        Consecutive failed calls after which a backend is skipped for
        the rest of the run (any validated success resets the count).
    double_check_infeasible:
        Confirm INFEASIBLE verdicts with the next live backend before
        believing them.  Off by default (it doubles the cost of every
        genuinely infeasible node); the chaos CLI/tests turn it on
        because the ``infeasible`` fault class is undetectable any
        other way.
    sleep:
        Injected for tests; defaults to :func:`time.sleep`.
    """

    def __init__(
        self,
        backends: "Optional[Sequence[Tuple[str, Callable[..., LPResult]]]]" = None,
        max_retries: int = 2,
        backoff_s: float = 0.01,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 0.25,
        residual_tol: float = 1e-6,
        quarantine_after: int = 3,
        double_check_infeasible: bool = False,
        sleep: "Callable[[float], None]" = time.sleep,
    ) -> None:
        chain = list(backends) if backends is not None else default_backend_chain()
        if not chain:
            raise ValueError("ResilientLPBackend needs at least one backend")
        self._slots = [_BackendSlot(name, fn) for name, fn in chain]
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self.residual_tol = residual_tol
        self.quarantine_after = quarantine_after
        self.double_check_infeasible = double_check_infeasible
        self._sleep = sleep
        # Counters for telemetry.
        self.calls = 0
        self.retries = 0
        self.fallbacks = 0
        self.validation_failures = 0
        self.quarantines = 0
        self.infeasible_overruled = 0
        self.fault_log: "List[Dict[str, object]]" = []

    # ------------------------------------------------------------------

    @property
    def backend_names(self) -> "List[str]":
        return [slot.name for slot in self._slots]

    def _log(self, backend: str, kind: str, detail: str) -> None:
        if len(self.fault_log) < _LOG_CAP:
            self.fault_log.append(
                {"call": self.calls, "backend": backend,
                 "kind": kind, "detail": detail}
            )

    def _live_slots(self) -> "List[_BackendSlot]":
        return [slot for slot in self._slots if not slot.quarantined]

    def _mark_failure(self, slot: _BackendSlot) -> None:
        slot.failures += 1
        slot.consecutive_failures += 1
        if (
            not slot.quarantined
            and slot.consecutive_failures >= self.quarantine_after
        ):
            slot.quarantined = True
            self.quarantines += 1
            self._log(slot.name, "quarantine",
                      f"after {slot.consecutive_failures} consecutive failures")

    # ------------------------------------------------------------------

    def __call__(self, form, lb_override=None, ub_override=None) -> LPResult:
        self.calls += 1
        lb = form.lb if lb_override is None else lb_override
        ub = form.ub if ub_override is None else ub_override
        if np.any(np.asarray(lb) > np.asarray(ub) + 1e-12):
            # Contradictory branching fixation: trivially infeasible —
            # and *provably* so, no backend opinion needed.
            return LPResult(status=SolveStatus.INFEASIBLE)

        errors: "List[str]" = []
        live = self._live_slots()
        for pos, slot in enumerate(live):
            if pos > 0:
                self.fallbacks += 1
                self._log(slot.name, "fallback", f"after {errors[-1]}")
            result = self._try_backend(slot, form, lb, ub, errors)
            if result is None:
                continue
            if (
                result.status is SolveStatus.INFEASIBLE
                and self.double_check_infeasible
            ):
                result = self._confirm_infeasible(
                    result, slot, live[pos + 1:], form, lb, ub
                )
            return result
        raise BackendChainExhausted(
            "every LP backend failed: " + "; ".join(errors)
            if errors
            else "every LP backend is quarantined"
        )

    def _try_backend(self, slot, form, lb, ub, errors) -> "Optional[LPResult]":
        """Run one backend with retries; None means move down the chain."""
        delay = self.backoff_s
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            slot.calls += 1
            try:
                result = slot.fn(form, lb, ub)
            except TransientSolverError as exc:
                self._log(slot.name, "transient", str(exc))
                errors.append(f"{slot.name}: transient: {exc}")
                if attempt + 1 < attempts:
                    self.retries += 1
                    self._sleep(delay)
                    delay = min(delay * self.backoff_factor, self.max_backoff_s)
                    continue
                self._mark_failure(slot)
                return None
            except SolverError as exc:
                # Non-transient: retrying the same backend is pointless.
                self._log(slot.name, "fault", str(exc))
                errors.append(f"{slot.name}: {exc}")
                self._mark_failure(slot)
                return None
            reason = validate_lp_result(result, form, lb, ub, self.residual_tol)
            if reason is None:
                slot.consecutive_failures = 0
                return result
            self.validation_failures += 1
            self._log(slot.name, "validation", reason)
            errors.append(f"{slot.name}: validation: {reason}")
            if attempt + 1 < attempts:
                self.retries += 1
                self._sleep(delay)
                delay = min(delay * self.backoff_factor, self.max_backoff_s)
                continue
        self._mark_failure(slot)
        return None

    def _confirm_infeasible(
        self, verdict, slot, rest, form, lb, ub
    ) -> LPResult:
        """Second-opinion an INFEASIBLE verdict with the next backend.

        A confirming INFEASIBLE (or an unusable second opinion) keeps
        the verdict; a *validated* solution from the second backend
        overrules it — the first backend's verdict was spurious, which
        counts as a failure against its quarantine budget.
        """
        for other in rest:
            other.calls += 1
            try:
                second = other.fn(form, lb, ub)
            except SolverError as exc:
                self._log(other.name, "fault",
                          f"during infeasible double-check: {exc}")
                continue
            if second.status is SolveStatus.INFEASIBLE:
                slot.consecutive_failures = 0
                return verdict
            reason = validate_lp_result(second, form, lb, ub, self.residual_tol)
            if second.status is SolveStatus.OPTIMAL and reason is None:
                self.infeasible_overruled += 1
                self._log(slot.name, "spurious-infeasible",
                          f"overruled by {other.name}")
                self._mark_failure(slot)
                return second
        return verdict

    # ------------------------------------------------------------------

    def kernel_telemetry(self) -> "Optional[Dict[str, object]]":
        """Kernel counters of the first chain member exposing them.

        The incremental LP kernel (:mod:`repro.ilp.incremental`) sits at
        the head of the default chain; this passthrough lets the branch
        and bound surface its warm-start/cache counters in
        ``solve.kernel`` even when the kernel is wrapped by the chain —
        or by a chaos injector (whose ``inner`` attribute is followed).
        Returns None when no chain member is kernel-aware.
        """
        for slot in self._slots:
            for candidate in (slot.fn, getattr(slot.fn, "inner", None)):
                telemetry = getattr(candidate, "kernel_telemetry", None)
                if callable(telemetry):
                    return telemetry()
        return None

    def resilience_telemetry(self) -> "Dict[str, object]":
        """Structured counters + fault log for ``solve.resilience``."""
        injector = None
        for slot in self._slots:
            telemetry = getattr(slot.fn, "telemetry", None)
            if callable(telemetry):
                injector = telemetry()
                break
        return {
            "calls": self.calls,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "validation_failures": self.validation_failures,
            "quarantines": self.quarantines,
            "infeasible_overruled": self.infeasible_overruled,
            "backends": [slot.as_dict() for slot in self._slots],
            "faults": list(self.fault_log),
            "injector": injector,
        }
