"""Solver resilience: fault injection, retry/fallback chains, checkpoints.

The paper's whole argument rests on long branch-and-bound runs
surviving to completion, and the ROADMAP's production north star means
solver faults, numerical breakdown, and process death must be
survivable outcomes, not crashes.  This package supplies the three
mechanical pieces (the fourth — graceful degradation to heuristic
baselines — lives in :mod:`repro.core.partitioner`, which owns the
baselines):

* :mod:`~repro.ilp.resilience.faults` — deterministic, seeded fault
  injection (:class:`FaultInjectingBackend`) so every recovery path is
  exercisable from tests and the ``--chaos-*`` CLI flags;
* :mod:`~repro.ilp.resilience.resilient` — the validating, retrying,
  falling-through LP backend chain (:class:`ResilientLPBackend`);
* :mod:`~repro.ilp.resilience.checkpoint` — versioned, atomic
  serialization of the search frontier for
  :meth:`~repro.ilp.branch_bound.BranchAndBound.resume`.
"""

from repro.ilp.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_SCHEMAS_READ,
    form_fingerprint,
    read_checkpoint,
    write_checkpoint_atomic,
)
from repro.ilp.resilience.faults import (
    FAULT_KINDS,
    FaultInjectingBackend,
    FaultPlan,
)
from repro.ilp.resilience.resilient import (
    ResilientLPBackend,
    default_backend_chain,
    validate_lp_result,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultInjectingBackend",
    "ResilientLPBackend",
    "default_backend_chain",
    "validate_lp_result",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMAS_READ",
    "form_fingerprint",
    "read_checkpoint",
    "write_checkpoint_atomic",
]
