"""Primal heuristics for the B&B hot loop: diving and polishing.

Both heuristics exploit the incremental LP kernel's cheap
bound-mutation re-solves (PR 5): every probe is the same
``lp_backend(form, lb, ub)`` call the tree search itself makes, so a
warm-started kernel answers most of them from the parent basis.  They
also mirror the search's own leaf structure: when the model has
registered group-0 branching variables and ``leaf_subsolve`` is on,
the dive fixes *only* group-0 variables (the ``y`` assignment row) and
hands the fully-fixed residue to the exact leaf solver — the same
division of labor that makes the tree search itself fast.

``lp_dive``
    Round-and-repair descent from a node's fractional LP point: fix
    the most fractional branching variable to its nearest integer
    (zeroing registered SOS1 peers on a 1-fix), re-solve, repeat.  A
    dead end backtracks depth-first through the untried sides of
    earlier fixes.  Bounded by ``dive_max_lp`` LP/leaf calls and
    pruned as soon as a dive LP bound can no longer beat the
    incumbent.
``polish_incumbent``
    1-opt local search around the current incumbent: for each SOS1
    assignment group, move the chosen member to each alternative with
    every other branching variable pinned at its incumbent value.  An
    LP probe lower-bounds each move (cheap reject); survivors are
    completed exactly by the leaf solver.  Bounded by
    ``polish_max_lp`` LP/leaf calls; returns the best
    strictly-improving reassignment.

Neither heuristic ever closes a node — they only feed the shared
incumbent so bound pruning and reduced-cost fixing fire earlier.  The
caller audits returned points (``verify_design`` via the configured
``incumbent_auditor``, plus exact feasibility pre-validation in proof
mode) before adoption, so a heuristic can never corrupt the incumbent.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SolverError
from repro.ilp.solution import LPResult, SolveStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.ilp.branch_bound import BranchAndBound, _Node


def _fractionality(value: float) -> float:
    return abs(value - round(value))


def _next_fix(
    solver: "BranchAndBound",
    lb: "np.ndarray",
    ub: "np.ndarray",
    current: "Optional[LPResult]",
    use_group0: bool,
):
    """Decide the next dive action from the current LP point.

    Returns ``(pick, target, other)`` to fix a variable, ``"leaf"``
    when every group-0 variable is bound-fixed (exact completion),
    ``"integral"`` when the point is already fully integral, or None
    when this path is a dead end (no/poor LP) and the dive should
    backtrack.
    """
    if (
        current is None
        or current.objective is None
        or current.values is None
        or current.objective >= solver._prune_threshold(solver._incumbent_obj)
    ):
        return None
    values = current.values
    fractional = solver._fractional_indices(values)
    if use_group0:
        targets = [j for j in fractional if j in solver._group0_set]
    else:
        targets = fractional
    if targets:
        pick = max(
            targets,
            key=lambda j: (_fractionality(float(values[j])), -j),
        )
        value = float(values[pick])
        lo_t = max(float(lb[pick]), math.floor(value))
        hi_t = min(float(ub[pick]), math.ceil(value))
        target = min(max(float(round(value)), lo_t), hi_t)
        other = hi_t if target == lo_t else lo_t
        return pick, target, other
    if not use_group0:
        return "integral"
    unfixed = [j for j in solver._group0 if lb[j] != ub[j]]
    if not unfixed:
        return "leaf"
    # Group-0 integral in the LP but not yet bound-fixed: drive to
    # fixation (mirrors ``_decide``), preferring what the LP wants most.
    pick = max(unfixed, key=lambda j: (float(values[j]), -j))
    lo, hi = float(lb[pick]), float(ub[pick])
    target = min(max(float(round(float(values[pick]))), lo), hi)
    other = target + 1.0 if target + 1.0 <= hi else target - 1.0
    if other < lo:
        other = target
    return pick, target, other


def lp_dive(
    solver: "BranchAndBound", node: "_Node", lp: LPResult
) -> "Optional[Tuple[float, Dict[int, float]]]":
    """Dive from ``node``'s LP point toward an integer-feasible one.

    Returns ``(objective, values)`` on success, None when the dive is
    abandoned (budget spent, or every open alternative dead-ended).
    """
    config = solver.config
    heur = solver._heur
    heur["dives"] += 1
    budget = max(1, config.dive_max_lp)
    use_group0 = bool(config.leaf_subsolve and solver._group0)
    # Depth-first with one untried alternative per fixing level: a dead
    # end backtracks to the most recent level whose other side is still
    # open instead of abandoning the whole dive.
    pending: "List[tuple]" = []
    lb = node.lb.copy()
    ub = node.ub.copy()
    current: "Optional[LPResult]" = lp
    while True:
        step = _next_fix(solver, lb, ub, current, use_group0)
        if step == "integral":
            assert current is not None
            return float(current.objective), solver._round_integers(
                current.values
            )
        if step == "leaf":
            if budget <= 0:
                return None
            budget -= 1
            heur["dive_leaf_solves"] += 1
            kind, payload = solver._leaf_subsolve(
                type(node)(lb.copy(), ub.copy(), node.depth)
            )
            if kind == "optimal":
                obj, values = payload
                if obj < solver._prune_threshold(solver._incumbent_obj):
                    return float(obj), dict(values)
            step = None  # infeasible / timed-out / useless leaf
        if step is None:
            if not pending:
                return None
            lb, ub, pick, target = pending.pop()
        else:
            pick, target, other = step
            if other != target:
                pending.append((lb.copy(), ub.copy(), pick, other))
        if budget <= 0:
            return None
        lb[pick] = target
        ub[pick] = target
        if target >= 1.0:
            for peer in solver._sos1_of.get(pick, ()):
                if ub[peer] > 0.0:
                    ub[peer] = 0.0
        budget -= 1
        heur["dive_lp_solves"] += 1
        try:
            probe = config.lp_backend(solver.form, lb, ub)
        except SolverError:
            probe = None
        current = None
        if (
            probe is not None
            and probe.status is SolveStatus.OPTIMAL
            and probe.values is not None
        ):
            current = probe


def polish_incumbent(
    solver: "BranchAndBound",
) -> "Optional[Tuple[float, Dict[int, float]]]":
    """1-opt reassignment around the current incumbent.

    Returns the best strictly-improving ``(objective, values)`` found
    within the LP budget, or None.  Never mutates solver state beyond
    the heuristics counters — adoption (and auditing) is the caller's
    job.
    """
    values = solver._incumbent_values
    if values is None or not solver.model.sos1_groups:
        return None
    config = solver.config
    heur = solver._heur
    heur["polish_calls"] += 1
    budget = max(1, config.polish_max_lp)
    use_leaf = bool(config.leaf_subsolve and solver._group0)
    # Branching variables pinned at their incumbent values; each move
    # edits exactly one SOS1 group on top of this template.  Without a
    # leaf path every integer variable is pinned instead, so an LP
    # completion is integer-feasible by construction.
    pinned = (
        solver._group0 if use_leaf else [int(j) for j in solver._int_indices]
    )
    tmpl_lb = solver.form.lb.copy()
    tmpl_ub = solver.form.ub.copy()
    for raw in pinned:
        j = int(raw)
        v = float(round(values.get(j, 0.0)))
        tmpl_lb[j] = v
        tmpl_ub[j] = v
    best_obj = solver._incumbent_obj
    best: "Optional[Dict[int, float]]" = None
    for group in solver.model.sos1_groups:
        chosen = [j for j in group if values.get(j, 0.0) >= 0.5]
        if len(chosen) != 1:
            continue
        member = chosen[0]
        for alt in group:
            if alt == member:
                continue
            if solver.form.ub[alt] < 1.0 or solver.form.lb[member] > 0.0:
                continue  # the move is fixed away in the root box
            if budget <= 0:
                break
            lb = tmpl_lb.copy()
            ub = tmpl_ub.copy()
            lb[member] = 0.0
            ub[member] = 0.0
            lb[alt] = 1.0
            ub[alt] = 1.0
            budget -= 1
            heur["polish_lp_solves"] += 1
            try:
                probe = config.lp_backend(solver.form, lb, ub)
            except SolverError:
                continue
            if (
                probe.status is not SolveStatus.OPTIMAL
                or probe.values is None
                or probe.objective is None
            ):
                continue
            if float(probe.objective) >= best_obj - 1e-9:
                continue  # even the relaxation cannot beat the best move
            if not use_leaf:
                best_obj = float(probe.objective)
                best = solver._round_integers(probe.values)
                continue
            if budget <= 0:
                break
            budget -= 1
            heur["polish_leaf_solves"] += 1
            from repro.ilp.branch_bound import _Node

            kind, payload = solver._leaf_subsolve(_Node(lb, ub, 0))
            if kind != "optimal":
                continue
            obj, full_values = payload
            if float(obj) < best_obj - 1e-9:
                best_obj = float(obj)
                best = dict(full_values)
        if budget <= 0:
            break
    if best is None:
        return None
    return best_obj, best
