"""A self-contained dense two-phase primal simplex LP solver.

This is the reference LP implementation of the repo: small, readable,
and dependency-free beyond numpy.  The production path uses SciPy's
HiGHS (:mod:`repro.ilp.scipy_backend`); this solver exists so the whole
pipeline can run without scipy's compiled solvers, and so the test
suite can cross-check two independent LP implementations against each
other (property-based tests in ``tests/ilp/test_simplex.py``).

Method
------
The bounded-variable problem ::

    min c'x   s.t.  A_ub x <= b_ub,  A_eq x == b_eq,  lb <= x <= ub

is shifted to ``y = x - lb >= 0`` and finite upper bounds become extra
``y_i <= ub_i - lb_i`` rows.  Slack variables convert inequalities to
equalities, rows are sign-normalized to non-negative right-hand sides,
artificial variables complete an identity basis, and a standard
two-phase full-tableau simplex with Bland's anti-cycling rule runs to
optimality.  Dense tableau updates are O(rows x cols) per pivot — fine
for the reference role; do not use it for the big Table-4 models.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ilp.solution import LPResult, SolveStatus
from repro.ilp.standard_form import StandardForm

#: Tolerance for optimality / feasibility decisions in the tableau.
_TOL = 1e-9


def solve_lp_simplex(
    form: StandardForm,
    lb_override: "Optional[np.ndarray]" = None,
    ub_override: "Optional[np.ndarray]" = None,
    max_iter: int = 20_000,
) -> LPResult:
    """Solve the LP relaxation of ``form`` with the built-in simplex.

    Same contract as :func:`repro.ilp.scipy_backend.solve_lp_scipy`;
    integrality is ignored.  Unbounded below is reported as
    ``UNBOUNDED`` (cannot happen for the paper's models, whose variables
    are all box-bounded).
    """
    lb = np.asarray(form.lb if lb_override is None else lb_override, dtype=float)
    ub = np.asarray(form.ub if ub_override is None else ub_override, dtype=float)
    if np.any(lb > ub + 1e-12):
        return LPResult(status=SolveStatus.INFEASIBLE)
    if np.any(np.isinf(lb)):
        raise SolverError("simplex backend requires finite lower bounds")

    n = form.num_vars
    a_ub = form.a_ub.toarray() if form.a_ub.shape[0] else np.zeros((0, n))
    a_eq = form.a_eq.toarray() if form.a_eq.shape[0] else np.zeros((0, n))

    # Shift: x = y + lb with y >= 0.
    shift = lb
    b_ub = form.b_ub - a_ub @ shift if a_ub.shape[0] else np.zeros(0)
    b_eq = form.b_eq - a_eq @ shift if a_eq.shape[0] else np.zeros(0)

    # Finite upper bounds as extra <= rows: y_i <= ub_i - lb_i.
    finite = np.where(np.isfinite(ub))[0]
    bound_rows = np.zeros((len(finite), n))
    bound_rhs = np.zeros(len(finite))
    for row, idx in enumerate(finite):
        bound_rows[row, idx] = 1.0
        bound_rhs[row] = ub[idx] - lb[idx]
        if bound_rhs[row] < -1e-12:
            return LPResult(status=SolveStatus.INFEASIBLE)

    a_le = np.vstack([a_ub, bound_rows]) if a_ub.shape[0] else bound_rows
    b_le = np.concatenate([b_ub, bound_rhs]) if b_ub.shape[0] else bound_rhs

    tableau, basis, n_struct, n_slack = _build_phase1(a_le, b_le, a_eq, b_eq, n)
    n_art = tableau.shape[1] - 1 - n_struct - n_slack

    if n_art:
        status = _run_simplex(tableau, basis, max_iter)
        if status != SolveStatus.OPTIMAL:  # pragma: no cover - phase 1 is bounded
            raise SolverError("phase-1 simplex did not terminate optimally")
        if tableau[-1, -1] < -1e-7:
            return LPResult(status=SolveStatus.INFEASIBLE)
        _drive_out_artificials(tableau, basis, n_struct + n_slack)
        # Any artificial still basic sits in a redundant (all-zero) row at
        # value 0; drop those rows entirely before stripping the columns.
        keep = [row for row in range(len(basis)) if basis[row] < n_struct + n_slack]
        if len(keep) != len(basis):
            tableau = np.vstack([tableau[keep, :], tableau[-1:, :]])
            basis = [basis[row] for row in keep]

    # Phase 2: swap in the real objective (on shifted variables).
    c_full = np.zeros(tableau.shape[1] - 1)
    c_full[:n] = form.c
    tableau = _strip_artificials(tableau, n_struct + n_slack)
    _install_objective(tableau, basis, c_full[: n_struct + n_slack])

    status = _run_simplex(tableau, basis, max_iter)
    if status is SolveStatus.UNBOUNDED:
        return LPResult(status=SolveStatus.UNBOUNDED)

    y = np.zeros(n_struct + n_slack)
    for row, var in enumerate(basis):
        if var < len(y):
            y[var] = tableau[row, -1]
    x = y[:n] + shift
    objective = float(form.c @ x)
    return LPResult(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values={idx: float(v) for idx, v in enumerate(x)},
    )


def _build_phase1(a_le, b_le, a_eq, b_eq, n):
    """Assemble the phase-1 tableau with slacks and artificials.

    Returns ``(tableau, basis, n_struct, n_slack)``.  The last tableau
    row is the (phase-1) objective row; the last column is the rhs.
    """
    m_le = a_le.shape[0]
    m_eq = a_eq.shape[0]
    m = m_le + m_eq

    a = np.zeros((m, n + m_le))
    b = np.zeros(m)
    if m_le:
        a[:m_le, :n] = a_le
        a[:m_le, n : n + m_le] = np.eye(m_le)
        b[:m_le] = b_le
    if m_eq:
        a[m_le:, :n] = a_eq
        b[m_le:] = b_eq

    # Normalize to b >= 0 (flips slack signs where applied).
    for row in range(m):
        if b[row] < 0:
            a[row, :] = -a[row, :]
            b[row] = -b[row]

    # Rows whose slack still forms an identity column can use it as the
    # initial basic variable; the rest get artificials.
    basis: "List[int]" = [-1] * m
    needs_art: "List[int]" = []
    for row in range(m):
        if row < m_le and a[row, n + row] == 1.0:
            basis[row] = n + row
        else:
            needs_art.append(row)

    n_art = len(needs_art)
    tableau = np.zeros((m + 1, n + m_le + n_art + 1))
    tableau[:m, : n + m_le] = a
    tableau[:m, -1] = b
    for art_idx, row in enumerate(needs_art):
        col = n + m_le + art_idx
        tableau[row, col] = 1.0
        basis[row] = col

    # Phase-1 objective: minimize sum of artificials; express the
    # objective row in terms of non-basic variables (price out).
    if n_art:
        obj = np.zeros(tableau.shape[1])
        for art_idx in range(n_art):
            obj[n + m_le + art_idx] = 1.0
        tableau[-1, :] = obj
        for row in needs_art:
            tableau[-1, :] -= tableau[row, :]
    return tableau, basis, n, m_le


def _install_objective(tableau, basis, c):
    """Write a phase-2 objective row priced out against the basis."""
    ncols = tableau.shape[1]
    obj = np.zeros(ncols)
    obj[: len(c)] = c
    tableau[-1, :] = obj
    for row, var in enumerate(basis):
        coef = tableau[-1, var]
        if coef != 0.0:
            tableau[-1, :] -= coef * tableau[row, :]


def _strip_artificials(tableau, n_real):
    """Drop artificial columns, keeping structural+slack plus rhs."""
    return np.hstack([tableau[:, :n_real], tableau[:, -1:]]).copy()


def _drive_out_artificials(tableau, basis, n_real):
    """Pivot basic artificials out of the basis where possible.

    A basic artificial at value 0 whose row has some nonzero real
    coefficient is replaced by that real variable; a fully zero row is
    redundant and harmlessly keeps its artificial at value 0 (the
    column is then stripped — the row becomes an identity-free zero row,
    which later pivots ignore).
    """
    m = len(basis)
    for row in range(m):
        if basis[row] >= n_real:
            cols = np.where(np.abs(tableau[row, :n_real]) > _TOL)[0]
            if len(cols):
                _pivot(tableau, basis, row, int(cols[0]))


def _run_simplex(tableau, basis, max_iter) -> SolveStatus:
    """Run primal simplex to optimality with Bland's rule."""
    ncols = tableau.shape[1] - 1
    for _ in range(max_iter):
        reduced = tableau[-1, :ncols]
        entering = -1
        for col in range(ncols):
            if reduced[col] < -_TOL:
                entering = col
                break  # Bland: smallest index
        if entering < 0:
            return SolveStatus.OPTIMAL
        ratios = []
        for row in range(len(basis)):
            coef = tableau[row, entering]
            if coef > _TOL:
                ratios.append((tableau[row, -1] / coef, basis[row], row))
        if not ratios:
            return SolveStatus.UNBOUNDED
        # Bland tie-break: smallest ratio, then smallest basic-variable index.
        ratios.sort(key=lambda t: (t[0], t[1]))
        _, _, leave_row = ratios[0]
        _pivot(tableau, basis, leave_row, entering)
    raise SolverError(f"simplex exceeded {max_iter} iterations")


def _pivot(tableau, basis, row, col) -> None:
    """Gauss-Jordan pivot on (row, col)."""
    pivot_val = tableau[row, col]
    if abs(pivot_val) <= _TOL:  # pragma: no cover - guarded by callers
        raise SolverError("attempted pivot on a (near-)zero element")
    tableau[row, :] /= pivot_val
    for other in range(tableau.shape[0]):
        if other != row and tableau[other, col] != 0.0:
            tableau[other, :] -= tableau[other, col] * tableau[row, :]
    basis[row] = col
