"""A self-contained dense two-phase primal simplex LP solver.

This is the reference LP implementation of the repo: small, readable,
and dependency-free beyond numpy.  The production path uses SciPy's
HiGHS (:mod:`repro.ilp.scipy_backend`); this solver exists so the whole
pipeline can run without scipy's compiled solvers, and so the test
suite can cross-check two independent LP implementations against each
other (property-based tests in ``tests/test_ilp_solvers.py``).

Method
------
The bounded-variable problem ::

    min c'x   s.t.  A_ub x <= b_ub,  A_eq x == b_eq,  lb <= x <= ub

is shifted to ``y = x - lb >= 0`` and finite upper bounds become extra
``y_i <= ub_i - lb_i`` rows.  Slack variables convert inequalities to
equalities, rows are sign-normalized to non-negative right-hand sides,
artificial variables complete an identity basis, and a standard
two-phase full-tableau simplex with Bland's anti-cycling rule runs to
optimality.

Both phases operate **in place on one preallocated tableau**: phase 2
reuses the phase-1 array, restricting pivot-column search to the
structural+slack prefix (artificial columns are simply never entered
again) and compacting redundant rows by moving surviving rows up within
the same buffer — no per-phase dense copies.  Dense updates are still
O(rows x cols) per pivot — fine for the reference role; the
:data:`MAX_TABLEAU_ELEMENTS` guard refuses models whose tableau would
not fit that role (a typed :class:`~repro.errors.SolverError`, never a
raw ``MemoryError`` from a doomed allocation).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ilp.solution import LPResult, SolveStatus, ValueVector
from repro.ilp.standard_form import StandardForm

#: Tolerance for optimality / feasibility decisions in the tableau.
_TOL = 1e-9

#: Hard ceiling on the dense tableau size, in float64 elements
#: (25e6 elements = 200 MB).  The guard is computed *before* any big
#: allocation from the worst-case width (every row needing an
#: artificial), so exceeding it raises a typed SolverError the
#: resilience chain can treat as a terminal backend fault — not a
#: process-threatening MemoryError mid-allocation.  The documented
#: limit: (rows + 1) x (n + m_le + m + 1) must stay at or under this.
MAX_TABLEAU_ELEMENTS = 25_000_000


def solve_lp_simplex(
    form: StandardForm,
    lb_override: "Optional[np.ndarray]" = None,
    ub_override: "Optional[np.ndarray]" = None,
    max_iter: int = 20_000,
) -> LPResult:
    """Solve the LP relaxation of ``form`` with the built-in simplex.

    Same contract as :func:`repro.ilp.scipy_backend.solve_lp_scipy`;
    integrality is ignored.  Unbounded below is reported as
    ``UNBOUNDED`` (cannot happen for the paper's models, whose variables
    are all box-bounded).  Raises :class:`~repro.errors.SolverError`
    when the dense tableau would exceed :data:`MAX_TABLEAU_ELEMENTS`.
    """
    lb = np.asarray(form.lb if lb_override is None else lb_override, dtype=float)
    ub = np.asarray(form.ub if ub_override is None else ub_override, dtype=float)
    if np.any(lb > ub + 1e-12):
        return LPResult(status=SolveStatus.INFEASIBLE)
    if np.any(np.isinf(lb)):
        raise SolverError("simplex backend requires finite lower bounds")

    n = form.num_vars
    m_ub = form.a_ub.shape[0]
    m_eq = form.a_eq.shape[0]
    n_bound_rows = int(np.count_nonzero(np.isfinite(ub)))
    m_le = m_ub + n_bound_rows
    m = m_le + m_eq
    # Worst case every row needs an artificial; guard before any dense
    # allocation so oversized models fail typed, not with MemoryError.
    worst_elements = (m + 1) * (n + m_le + m + 1)
    if worst_elements > MAX_TABLEAU_ELEMENTS:
        raise SolverError(
            f"simplex tableau would need up to {worst_elements} elements "
            f"({m} rows x {n} structural vars), exceeding the documented "
            f"MAX_TABLEAU_ELEMENTS={MAX_TABLEAU_ELEMENTS}; use the scipy "
            f"backend for models of this size"
        )

    a_ub = form.a_ub.toarray() if m_ub else np.zeros((0, n))
    a_eq = form.a_eq.toarray() if m_eq else np.zeros((0, n))

    # Shift: x = y + lb with y >= 0.
    shift = lb
    b_ub = form.b_ub - a_ub @ shift if a_ub.shape[0] else np.zeros(0)
    b_eq = form.b_eq - a_eq @ shift if a_eq.shape[0] else np.zeros(0)

    # Finite upper bounds as extra <= rows: y_i <= ub_i - lb_i.
    finite = np.where(np.isfinite(ub))[0]
    bound_rows = np.zeros((len(finite), n))
    bound_rhs = np.zeros(len(finite))
    for row, idx in enumerate(finite):
        bound_rows[row, idx] = 1.0
        bound_rhs[row] = ub[idx] - lb[idx]
        if bound_rhs[row] < -1e-12:
            return LPResult(status=SolveStatus.INFEASIBLE)

    a_le = np.vstack([a_ub, bound_rows]) if a_ub.shape[0] else bound_rows
    b_le = np.concatenate([b_ub, bound_rhs]) if b_ub.shape[0] else bound_rhs

    tableau, basis, n_struct, n_slack = _build_phase1(a_le, b_le, a_eq, b_eq, n)
    n_real = n_struct + n_slack
    n_art = tableau.shape[1] - 1 - n_real

    if n_art:
        status = _run_simplex(tableau, basis, max_iter, col_limit=n_real + n_art)
        if status != SolveStatus.OPTIMAL:  # pragma: no cover - phase 1 is bounded
            raise SolverError("phase-1 simplex did not terminate optimally")
        if tableau[-1, -1] < -1e-7:
            return LPResult(status=SolveStatus.INFEASIBLE)
        _drive_out_artificials(tableau, basis, n_real)
        # Any artificial still basic sits in a redundant (all-zero) row
        # at value 0; compact the surviving rows upward *within the same
        # tableau* (the stale rows past the new active count are never
        # touched again) instead of rebuilding the array.
        keep = [row for row in range(len(basis)) if basis[row] < n_real]
        if len(keep) != len(basis):
            for new_row, old_row in enumerate(keep):
                if new_row != old_row:
                    tableau[new_row, :] = tableau[old_row, :]
            basis = [basis[row] for row in keep]

    # Phase 2: swap the real objective into the same tableau's last row
    # and restrict pivoting to the structural+slack columns; the
    # artificial columns stay allocated but are never entered again.
    _install_objective(tableau, basis, form.c, n_real)

    status = _run_simplex(tableau, basis, max_iter, col_limit=n_real)
    if status is SolveStatus.UNBOUNDED:
        return LPResult(status=SolveStatus.UNBOUNDED)

    y = np.zeros(n_real)
    for row, var in enumerate(basis):
        if var < len(y):
            y[var] = tableau[row, -1]
    x = y[:n] + shift
    objective = float(form.c @ x)
    return LPResult(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=ValueVector(x),
    )


def _build_phase1(a_le, b_le, a_eq, b_eq, n):
    """Assemble the phase-1 tableau with slacks and artificials.

    Returns ``(tableau, basis, n_struct, n_slack)``.  This is the one
    dense allocation of the whole solve — both phases run in place on
    it.  The last tableau row is the objective row; the last column is
    the rhs.
    """
    m_le = a_le.shape[0]
    m_eq = a_eq.shape[0]
    m = m_le + m_eq

    a = np.zeros((m, n + m_le))
    b = np.zeros(m)
    if m_le:
        a[:m_le, :n] = a_le
        a[:m_le, n : n + m_le] = np.eye(m_le)
        b[:m_le] = b_le
    if m_eq:
        a[m_le:, :n] = a_eq
        b[m_le:] = b_eq

    # Normalize to b >= 0 (flips slack signs where applied).
    for row in range(m):
        if b[row] < 0:
            a[row, :] = -a[row, :]
            b[row] = -b[row]

    # Rows whose slack still forms an identity column can use it as the
    # initial basic variable; the rest get artificials.
    basis: "List[int]" = [-1] * m
    needs_art: "List[int]" = []
    for row in range(m):
        if row < m_le and a[row, n + row] == 1.0:
            basis[row] = n + row
        else:
            needs_art.append(row)

    n_art = len(needs_art)
    tableau = np.zeros((m + 1, n + m_le + n_art + 1))
    tableau[:m, : n + m_le] = a
    tableau[:m, -1] = b
    for art_idx, row in enumerate(needs_art):
        col = n + m_le + art_idx
        tableau[row, col] = 1.0
        basis[row] = col

    # Phase-1 objective: minimize sum of artificials; express the
    # objective row in terms of non-basic variables (price out).
    if n_art:
        obj = np.zeros(tableau.shape[1])
        for art_idx in range(n_art):
            obj[n + m_le + art_idx] = 1.0
        tableau[-1, :] = obj
        for row in needs_art:
            tableau[-1, :] -= tableau[row, :]
    return tableau, basis, n, m_le


def _install_objective(tableau, basis, c, n_real):
    """Write the phase-2 objective into the tableau's last row, in place.

    Zeroes the whole row (including artificial columns, so stale
    phase-1 coefficients cannot re-enter), installs ``c`` on the
    structural prefix, and prices it out against the current basis.
    """
    tableau[-1, :] = 0.0
    tableau[-1, : min(len(c), n_real)] = c[: min(len(c), n_real)]
    for row, var in enumerate(basis):
        coef = tableau[-1, var]
        if coef != 0.0:
            tableau[-1, :] -= coef * tableau[row, :]


def _drive_out_artificials(tableau, basis, n_real):
    """Pivot basic artificials out of the basis where possible.

    A basic artificial at value 0 whose row has some nonzero real
    coefficient is replaced by that real variable; a fully zero row is
    redundant and harmlessly keeps its artificial at value 0 (the row is
    then compacted away by the caller).
    """
    m = len(basis)
    for row in range(m):
        if basis[row] >= n_real:
            cols = np.where(np.abs(tableau[row, :n_real]) > _TOL)[0]
            if len(cols):
                _pivot(tableau, basis, row, int(cols[0]))


def _run_simplex(tableau, basis, max_iter, col_limit) -> SolveStatus:
    """Run primal simplex to optimality with Bland's rule.

    ``col_limit`` bounds the entering-column search (phase 2 passes the
    structural+slack width so the still-allocated artificial columns
    are never re-entered); only the ``len(basis)`` active rows plus the
    objective row participate, so rows compacted away are inert.
    """
    for _ in range(max_iter):
        reduced = tableau[-1, :col_limit]
        entering = -1
        for col in range(col_limit):
            if reduced[col] < -_TOL:
                entering = col
                break  # Bland: smallest index
        if entering < 0:
            return SolveStatus.OPTIMAL
        ratios = []
        for row in range(len(basis)):
            coef = tableau[row, entering]
            if coef > _TOL:
                ratios.append((tableau[row, -1] / coef, basis[row], row))
        if not ratios:
            return SolveStatus.UNBOUNDED
        # Bland tie-break: smallest ratio, then smallest basic-variable index.
        ratios.sort(key=lambda t: (t[0], t[1]))
        _, _, leave_row = ratios[0]
        _pivot(tableau, basis, leave_row, entering)
    raise SolverError(f"simplex exceeded {max_iter} iterations")


def _pivot(tableau, basis, row, col) -> None:
    """Gauss-Jordan pivot on (row, col), touching active rows only."""
    pivot_val = tableau[row, col]
    if abs(pivot_val) <= _TOL:  # pragma: no cover - guarded by callers
        raise SolverError("attempted pivot on a (near-)zero element")
    tableau[row, :] /= pivot_val
    for other in range(len(basis)):
        if other != row and tableau[other, col] != 0.0:
            tableau[other, :] -= tableau[other, col] * tableau[row, :]
    if tableau[-1, col] != 0.0:
        tableau[-1, :] -= tableau[-1, col] * tableau[row, :]
    basis[row] = col
