"""The ``repro.bnb_proof/v1`` record schema and crash-tolerant reader.

A proof log is JSON Lines: one self-checksummed record per line,
appended (and flushed) as the search runs, so a crash loses at most
the final, torn line.  Stdlib only — the independent checker imports
this module and must never pull in an LP solver.

Record kinds
------------
``header``
    First line.  Schema id, SHA-256 formulation fingerprint, and the
    *embedded* standard form (objective, CSR constraint matrices,
    rhs vectors, bounds, integrality) so the checker can re-verify
    every certificate with exact rational arithmetic — and recompute
    the fingerprint to bind the embedded form to the artifact.
``cut``
    One root cutting plane (schema v2): the added ``a_ub`` row's
    coefficients and rhs plus a *derivation certificate* (cover
    violation witness, clique pairwise-conflict row justification, or
    implied-bound row references) from which the checker re-proves the
    row is satisfied by every integer-feasible point of the base form.
    All ``cut`` records sit immediately after the header, in index
    order; the verified rows extend the embedded form before any tree
    record is replayed.
``root``
    The root LP's dual vectors, justifying later reduced-cost fixes.
``rc_fix``
    One permanent reduced-cost bound fixation.
``branch``
    A node split into children (with any SOS1 bound-tightenings and
    their justifying constraint rows).
``prune``
    A node closed by bound (dual-vector certificate), by infeasibility
    (Farkas certificate or an exactly-empty bounds box), or by the
    reduced-cost box (``rcbox``).
``integral``
    An integer-feasible leaf: the claimed point, its objective, and —
    when available — the node LP's dual certificate that the subtree
    holds nothing better.
``forfeit``
    A node closed *without* proof (dropped after LP faults, open at a
    limit stop, no extractable certificate): an honestly-unproven
    subtree the audit enumerates.
``resume``
    A checkpoint-resume boundary: the restored frontier replaces the
    open set (each prior open subtree must be contained in it).
``result``
    Final line of a run: the claimed status / objective / bound.

Every record carries a ``crc`` field: the CRC-32 of its canonical JSON
body.  The checksum makes *any* byte tampering detectable even where
the mutated record would still verify mathematically (weak duality
means a corrupted dual vector can only weaken a bound, never forge
one — so without the checksum a flipped digit could go unnoticed).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Artifact schema identifier; bump on any layout change.  v1 logs
#: carry no cut records; v2 adds a ``cuts`` header count and that many
#: ``cut`` records immediately after the header.  The writer emits v1
#: whenever no cuts were added, so cut-less artifacts stay readable by
#: older checkers.
PROOF_SCHEMA = "repro.bnb_proof/v1"
PROOF_SCHEMA_V1 = PROOF_SCHEMA
PROOF_SCHEMA_V2 = "repro.bnb_proof/v2"

#: Every schema the checker accepts.
PROOF_SCHEMAS = frozenset({PROOF_SCHEMA_V1, PROOF_SCHEMA_V2})

KIND_HEADER = "header"
KIND_CUT = "cut"
KIND_ROOT = "root"
KIND_RC_FIX = "rc_fix"
KIND_BRANCH = "branch"
KIND_PRUNE = "prune"
KIND_INTEGRAL = "integral"
KIND_INCUMBENT = "incumbent"
KIND_FORFEIT = "forfeit"
KIND_RESUME = "resume"
KIND_RESULT = "result"

#: Every kind the v1 checker understands; anything else refutes.
RECORD_KINDS = frozenset(
    {
        KIND_HEADER,
        KIND_CUT,
        KIND_ROOT,
        KIND_RC_FIX,
        KIND_BRANCH,
        KIND_PRUNE,
        KIND_INTEGRAL,
        KIND_INCUMBENT,
        KIND_FORFEIT,
        KIND_RESUME,
        KIND_RESULT,
    }
)

Record = Dict[str, Any]


def canonical_body(record: Record) -> str:
    """Canonical JSON of a record body (no ``crc`` field).

    Sorted keys + tight separators make the serialization a pure
    function of the content, so writer and checker agree on the bytes
    the checksum covers.  Floats round-trip exactly through ``repr``.
    """
    body = {key: value for key, value in record.items() if key != "crc"}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def seal_record(record: Record) -> Record:
    """Attach the CRC-32 self-checksum to a record body."""
    record["crc"] = f"{zlib.crc32(canonical_body(record).encode('utf-8')):08x}"
    return record


def record_checksum_ok(record: Record) -> bool:
    """Re-derive and compare a record's self-checksum."""
    crc = record.get("crc")
    if not isinstance(crc, str):
        return False
    expected = f"{zlib.crc32(canonical_body(record).encode('utf-8')):08x}"
    return crc == expected


@dataclass
class ProofReadResult:
    """Outcome of reading a proof log tolerantly.

    ``records`` holds ``(line_number, record)`` pairs for every intact
    line.  ``torn_tail`` reports that a final, newline-less fragment
    was dropped (the crash-tolerance contract: an interrupted write
    loses only itself).  ``malformed_line`` is the first *interior*
    line that failed to parse — corruption, not a torn write, and the
    checker refutes on it.
    """

    records: List[Tuple[int, Record]] = field(default_factory=list)
    torn_tail: bool = False
    malformed_line: Optional[int] = None


def read_proof_records(path: Union[str, Path]) -> ProofReadResult:
    """Read a proof log, tolerating only a torn final line.

    Raises ``OSError`` when the file cannot be read at all; every
    in-band problem (bad JSON, non-object line) is reported through
    the result so the caller can turn it into a typed verdict.
    """
    raw = Path(path).read_bytes()
    result = ProofReadResult()
    if not raw:
        return result
    complete, _, tail = raw.rpartition(b"\n")
    if tail:
        # Bytes after the last newline: a write interrupted mid-line.
        result.torn_tail = True
    if not complete:
        return result
    for lineno, line in enumerate(complete.split(b"\n"), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            result.malformed_line = lineno
            return result
        if not isinstance(record, dict):
            result.malformed_line = lineno
            return result
        result.records.append((lineno, record))
    return result
