"""Proof-log writing: the solver side of certified solves.

The sink API here is called from :class:`~repro.ilp.branch_bound.
BranchAndBound` (and its parallel coordinator/workers) at every tree
event.  Two implementations:

* :class:`ProofWriter` — owns the JSONL artifact: header with the
  embedded formulation + SHA-256 fingerprint, per-record flush (a
  crash loses at most the torn final line), torn-tail truncation and
  foreign-fingerprint refusal when re-opened across a checkpoint
  resume.
* :class:`ProofBuffer` — used inside parallel workers: records
  accumulate in memory per chunk and ship to the coordinator in the
  ``done`` message, which appends them to the single log.  A crashed
  worker's buffer is simply lost — its nodes are requeued by the
  coordinator, so the log never claims a subtree the search did not
  actually close.

Every certificate is **pre-validated in exact rational arithmetic**
before it is written, using the same routines the independent checker
runs (:mod:`repro.ilp.certify.checker` is stdlib-only, so importing it
here adds no solver coupling).  A certificate that would not verify is
downgraded on the spot to a ``forfeit`` record (or a cert-less leaf):
an honest run can therefore audit CERTIFIED or
CERTIFIED-WITH-FORFEITURES, never REFUTED.
"""

from __future__ import annotations

import errno
import json
import math
from fractions import Fraction
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.artifacts import fsio
from repro.artifacts.log import truncate_torn_tail
from repro.errors import ArtifactError, ProofWriteError

from repro.ilp.certify.checker import (
    FEAS_TOL,
    Bound,
    ExactForm,
    append_cut_row,
    dual_bound,
    exact_objective,
    parse_dual_vector,
    reduced_cost_vector,
    verify_point,
)
from repro.ilp.certify.records import (
    KIND_BRANCH,
    KIND_FORFEIT,
    KIND_HEADER,
    KIND_INCUMBENT,
    KIND_INTEGRAL,
    KIND_PRUNE,
    KIND_RC_FIX,
    KIND_RESULT,
    KIND_RESUME,
    KIND_ROOT,
    PROOF_SCHEMA,
    PROOF_SCHEMA_V2,
    PROOF_SCHEMAS,
    Record,
    read_proof_records,
    seal_record,
)
from repro.ilp.resilience.checkpoint import form_fingerprint
from repro.ilp.standard_form import StandardForm

#: Writer-side safety margin: certificates are pre-validated against a
#: *stricter* threshold than the checker uses, absorbing the float
#: incumbent vs exact-incumbent discrepancy (sub-1e-9 in practice).
_SAFETY = FEAS_TOL / 2


class ProofLogMismatch(ValueError):
    """An existing proof log belongs to a different formulation."""


def form_to_json(form: StandardForm) -> Dict[str, Any]:
    """Embed a standard form as JSON the checker can re-verify against.

    Numeric layout mirrors :func:`~repro.ilp.resilience.checkpoint.
    form_fingerprint` exactly (float64 vectors, CSR index arrays with
    their native width recorded) so the checker can recompute the
    fingerprint from this embedding alone.
    """

    def matrix(m: Any) -> Dict[str, Any]:
        csr = m.tocsr()
        return {
            "data": [float(v) for v in np.asarray(csr.data, dtype=float)],
            "indices": [int(v) for v in csr.indices],
            "indptr": [int(v) for v in csr.indptr],
            "index_width": int(csr.indices.dtype.itemsize),
        }

    return {
        "n": form.num_vars,
        "c": [float(v) for v in form.c],
        "a_ub": matrix(form.a_ub),
        "b_ub": [float(v) for v in form.b_ub],
        "a_eq": matrix(form.a_eq),
        "b_eq": [float(v) for v in form.b_eq],
        "lb": [float(v) for v in form.lb],
        "ub": [float(v) for v in form.ub],
        "integrality": [int(v) for v in np.asarray(form.integrality, dtype=float)],
    }


def dual_to_sparse(vector: Optional[np.ndarray]) -> Dict[str, float]:
    """Sparse ``{row: value}`` JSON encoding of a dual vector."""
    if vector is None:
        return {}
    out: Dict[str, float] = {}
    for i, value in enumerate(np.asarray(vector, dtype=float)):
        if value != 0.0 and math.isfinite(value):
            out[str(i)] = float(value)
    return out


def _exact_bounds(arr: np.ndarray) -> List[Bound]:
    return [
        Fraction(float(v)) if math.isfinite(float(v)) else None for v in arr
    ]


def _bounds_delta(arr: np.ndarray, base: np.ndarray) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for j in np.nonzero(np.asarray(arr) != np.asarray(base))[0]:
        out[str(int(j))] = float(arr[int(j)])
    return out


class ProofSink:
    """Shared certificate construction + exact pre-validation.

    Subclasses provide :meth:`_emit`.  All ``incumbent`` arguments are
    the solver's *current* float incumbent objective (``math.inf`` when
    none): incumbents only improve, so a certificate valid against the
    current incumbent is valid against the final one the checker uses.
    """

    def __init__(
        self,
        form: StandardForm,
        *,
        objective_is_integral: bool,
        int_tol: float,
        base_form: Optional[StandardForm] = None,
        cut_records: Sequence[Record] = (),
    ) -> None:
        """``form`` is what the solver actually searches (cut rows
        included).  When root cuts were added, ``base_form`` is the
        pre-cut compiled form the header embeds (its fingerprint binds
        the artifact to the formulation) and ``cut_records`` are the
        already-validated ``cut`` records that rebuild the extension —
        the exact form used for every certificate check here is base +
        cuts, matching the checker's replay."""
        self.form = form
        self.base_form = base_form if base_form is not None else form
        self.cut_records: List[Record] = [dict(r) for r in cut_records]
        self.form_json = form_to_json(self.base_form)
        self.exact = ExactForm.from_header(self.form_json)
        for cut_record in self.cut_records:
            append_cut_row(self.exact, cut_record)
        self.obj_integral = objective_is_integral
        self.int_tol = float(int_tol)
        self.counts: Dict[str, int] = {}
        self.forfeit_count = 0
        self._root_y_ub: Optional[Dict[int, Fraction]] = None
        self._root_y_eq: Optional[Dict[int, Fraction]] = None
        self._root_r: Optional[List[Fraction]] = None
        self._root_bound: Optional[Fraction] = None
        # Column -> candidate constraint rows, built lazily for SOS1
        # tighten justification.
        self._col_rows: Optional[Dict[int, List[Tuple[str, int]]]] = None

    # -- plumbing -------------------------------------------------------

    def _emit(self, record: Record) -> None:
        raise NotImplementedError

    def _write(self, record: Record) -> None:
        kind = str(record.get("kind"))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if kind == KIND_FORFEIT:
            self.forfeit_count += 1
        self._emit(seal_record(record))

    def _box_json(
        self, lb: np.ndarray, ub: np.ndarray
    ) -> Dict[str, Dict[str, float]]:
        return {
            "lb": _bounds_delta(lb, self.form.lb),
            "ub": _bounds_delta(ub, self.form.ub),
        }

    def _covers(self, bound: Optional[Fraction], incumbent: float) -> bool:
        if bound is None or not math.isfinite(incumbent):
            return False
        inc = Fraction(incumbent)
        if self.obj_integral:
            return bound > inc - 1 + _SAFETY
        return bound >= inc - FEAS_TOL + _SAFETY

    def _exact_duals(
        self,
        y_ub: Optional[np.ndarray],
        y_eq: Optional[np.ndarray],
    ) -> Tuple[Dict[int, Fraction], Dict[int, Fraction]]:
        return (
            parse_dual_vector(dual_to_sparse(y_ub), self.exact.a_ub.nrows, "ub"),
            parse_dual_vector(dual_to_sparse(y_eq), self.exact.a_eq.nrows, "eq"),
        )

    # -- root + reduced-cost fixing -------------------------------------

    def set_root_duals(
        self,
        y_ub_sparse: Mapping[str, float],
        y_eq_sparse: Mapping[str, float],
    ) -> None:
        """Load root duals without emitting (parallel-worker side)."""
        self._root_y_ub = parse_dual_vector(
            dict(y_ub_sparse), self.exact.a_ub.nrows, "ub"
        )
        self._root_y_eq = parse_dual_vector(
            dict(y_eq_sparse), self.exact.a_eq.nrows, "eq"
        )
        self._root_r = None
        self._root_bound = None

    def root_duals_sparse(
        self,
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Re-export the loaded root duals (for shipping to workers)."""
        if self._root_y_ub is None or self._root_y_eq is None:
            return {}, {}
        return (
            {str(i): float(v) for i, v in self._root_y_ub.items()},
            {str(i): float(v) for i, v in self._root_y_eq.items()},
        )

    def emit_root(
        self,
        y_ub: Optional[np.ndarray],
        y_eq: Optional[np.ndarray],
    ) -> bool:
        """Record the root duals; False if they cannot justify fixes."""
        exact_ub, exact_eq = self._exact_duals(y_ub, y_eq)
        self._root_y_ub, self._root_y_eq = exact_ub, exact_eq
        self._root_r = None
        self._root_bound = None
        if self._root_justification() is None:
            self._root_y_ub = None
            self._root_y_eq = None
            return False
        self._write(
            {
                "kind": KIND_ROOT,
                "y_ub": {str(i): float(v) for i, v in exact_ub.items()},
                "y_eq": {str(i): float(v) for i, v in exact_eq.items()},
            }
        )
        return True

    def _root_justification(
        self,
    ) -> Optional[Tuple[List[Fraction], Fraction]]:
        if self._root_y_ub is None or self._root_y_eq is None:
            return None
        if self._root_r is None or self._root_bound is None:
            self._root_r = reduced_cost_vector(
                self.exact, self._root_y_ub, self._root_y_eq
            )
            self._root_bound = dual_bound(
                self.exact,
                self.exact.c,
                self._root_y_ub,
                self._root_y_eq,
                list(self.exact.lb),
                list(self.exact.ub),
            )
        if self._root_bound is None:
            return None
        return self._root_r, self._root_bound

    def certify_rc_fix(self, var: int, side: str, incumbent: float) -> bool:
        """Certify + record one reduced-cost fix; False means skip it.

        ``side`` names which root bound the variable is being fixed at:
        ``"lb"`` (its upper bound drops to the root lower bound) or
        ``"ub"`` (its lower bound rises to the root upper bound).
        """
        just = self._root_justification()
        if just is None:
            return False
        r, root_bound = just
        if side == "lb":
            bound = self.exact.lb[var]
            ok = (
                bound is not None
                and r[var] >= 0
                and self._covers(root_bound + r[var], incumbent)
            )
        elif side == "ub":
            bound = self.exact.ub[var]
            ok = (
                bound is not None
                and r[var] <= 0
                and self._covers(root_bound - r[var], incumbent)
            )
        else:
            return False
        if not ok:
            return False
        self._write(
            {
                "kind": KIND_RC_FIX,
                "var": int(var),
                "side": side,
                "bound": float(bound),
            }
        )
        return True

    # -- branching ------------------------------------------------------

    def _column_rows(self) -> Dict[int, List[Tuple[str, int]]]:
        if self._col_rows is None:
            index: Dict[int, List[Tuple[str, int]]] = {}
            for kind, matrix in (("ub", self.exact.a_ub), ("eq", self.exact.a_eq)):
                for row in range(matrix.nrows):
                    for j, a in matrix.row_entries(row):
                        if a:
                            index.setdefault(j, []).append((kind, row))
            self._col_rows = index
        return self._col_rows

    def justify_tighten(
        self,
        up_lb: np.ndarray,
        up_ub: np.ndarray,
        var: int,
        new_ub: float,
    ) -> Optional[Tuple[int, str]]:
        """Find a constraint row implying ``x_var <= new_ub`` over the box.

        Evaluated over the up-child's *current* box (previous tightens
        already applied), matching the checker's sequential replay.
        Returns ``(row, row_kind)`` or None (caller must then skip the
        propagation — an unjustifiable tighten would refute the log).
        """
        lb = _exact_bounds(up_lb)
        ub = _exact_bounds(up_ub)
        target = Fraction(float(new_ub))
        for kind, row in self._column_rows().get(int(var), []):
            matrix = self.exact.a_ub if kind == "ub" else self.exact.a_eq
            rhs = (self.exact.b_ub if kind == "ub" else self.exact.b_eq)[row]
            a_var: Optional[Fraction] = None
            rest: Optional[Fraction] = Fraction(0)
            for j, a in matrix.row_entries(row):
                if j == int(var):
                    a_var = a
                    continue
                bound = lb[j] if a > 0 else ub[j]
                if bound is None:
                    rest = None
                    break
                rest = rest + a * bound if rest is not None else None
            if a_var is None or a_var <= 0 or rest is None:
                continue
            if (rhs - rest) / a_var <= target:
                return row, kind
        return None

    def emit_branch(
        self,
        pid: str,
        eff_lb: np.ndarray,
        eff_ub: np.ndarray,
        var: int,
        children: Sequence[Tuple[str, np.ndarray, np.ndarray]],
        tightens: Sequence[Tuple[int, float, int, str]] = (),
    ) -> None:
        """Record a split: ``children`` is ``[(id, lb, ub)] * 2`` in
        down/up order; ``tightens`` are the up-child's justified SOS1
        propagations as ``(var, new_ub, row, row_kind)`` in the order
        they were applied."""
        record: Record = {
            "kind": KIND_BRANCH,
            "id": pid,
            "var": int(var),
            "children": [
                {"id": cid, **self._box_json(clb, cub)}
                for cid, clb, cub in children
            ],
        }
        record.update(self._box_json(eff_lb, eff_ub))
        if tightens:
            record["tighten"] = [
                {
                    "var": int(t_var),
                    "ub": float(t_ub),
                    "row": int(row),
                    "row_kind": row_kind,
                }
                for t_var, t_ub, row, row_kind in tightens
            ]
        self._write(record)

    # -- node closure ---------------------------------------------------

    def emit_prune_bound(
        self,
        pid: str,
        eff_lb: np.ndarray,
        eff_ub: np.ndarray,
        y_ub: Optional[np.ndarray],
        y_eq: Optional[np.ndarray],
        incumbent: float,
    ) -> None:
        """Bound prune with its dual certificate; forfeits if the
        certificate does not verify exactly."""
        exact_ub, exact_eq = self._exact_duals(y_ub, y_eq)
        bound = dual_bound(
            self.exact,
            self.exact.c,
            exact_ub,
            exact_eq,
            _exact_bounds(eff_lb),
            _exact_bounds(eff_ub),
        )
        if not self._covers(bound, incumbent):
            self.emit_forfeit(pid, "no_certificate", eff_lb, eff_ub)
            return
        record: Record = {
            "kind": KIND_PRUNE,
            "id": pid,
            "reason": "bound",
            "cert": {
                "kind": "duals",
                "y_ub": {str(i): float(v) for i, v in exact_ub.items()},
                "y_eq": {str(i): float(v) for i, v in exact_eq.items()},
            },
        }
        record.update(self._box_json(eff_lb, eff_ub))
        self._write(record)

    def _box_is_empty(self, lb: np.ndarray, ub: np.ndarray) -> bool:
        return bool(np.any(np.asarray(lb) > np.asarray(ub)))

    def emit_prune_infeasible(
        self,
        pid: str,
        eff_lb: np.ndarray,
        eff_ub: np.ndarray,
        y_ub: Optional[np.ndarray] = None,
        y_eq: Optional[np.ndarray] = None,
        reason: str = "infeasible",
    ) -> None:
        """Infeasibility prune: empty box, Farkas certificate, or —
        when neither holds up exactly — a forfeit."""
        if self._box_is_empty(eff_lb, eff_ub):
            record: Record = {
                "kind": KIND_PRUNE,
                "id": pid,
                "reason": reason,
                "cert": {"kind": "empty_box"},
            }
            record.update(self._box_json(eff_lb, eff_ub))
            self._write(record)
            return
        if y_ub is not None or y_eq is not None:
            exact_ub, exact_eq = self._exact_duals(y_ub, y_eq)
            gap = dual_bound(
                self.exact,
                None,
                exact_ub,
                exact_eq,
                _exact_bounds(eff_lb),
                _exact_bounds(eff_ub),
            )
            if gap is not None and gap > 0:
                record = {
                    "kind": KIND_PRUNE,
                    "id": pid,
                    "reason": "infeasible",
                    "cert": {
                        "kind": "farkas",
                        "y_ub": {
                            str(i): float(v) for i, v in exact_ub.items()
                        },
                        "y_eq": {
                            str(i): float(v) for i, v in exact_eq.items()
                        },
                    },
                }
                record.update(self._box_json(eff_lb, eff_ub))
                self._write(record)
                return
        self.emit_forfeit(pid, "no_certificate", eff_lb, eff_ub)

    def emit_integral(
        self,
        pid: str,
        eff_lb: np.ndarray,
        eff_ub: np.ndarray,
        values: np.ndarray,
        objective: float,
        y_ub: Optional[np.ndarray],
        y_eq: Optional[np.ndarray],
        incumbent: float,
    ) -> float:
        """Integer-feasible leaf; returns the recorded objective.

        The recorded objective is the *exact* objective of the recorded
        point (returned so the solver can adopt it as the incumbent and
        keep the final claim bit-identical to the certificate); the
        dual certificate is dropped (leaving an ``uncertified_leaf``
        forfeit at audit) if it does not verify."""
        x_sparse = {
            str(j): float(v)
            for j, v in enumerate(np.asarray(values, dtype=float))
            if v != 0.0
        }
        exact_x = {int(k): Fraction(v) for k, v in x_sparse.items()}
        exact_obj = exact_objective(self.exact, exact_x)
        record: Record = {
            "kind": KIND_INTEGRAL,
            "id": pid,
            "x": x_sparse,
            "objective": float(exact_obj),
        }
        record.update(self._box_json(eff_lb, eff_ub))
        if y_ub is not None or y_eq is not None:
            exact_ub, exact_eq = self._exact_duals(y_ub, y_eq)
            bound = dual_bound(
                self.exact,
                self.exact.c,
                exact_ub,
                exact_eq,
                _exact_bounds(eff_lb),
                _exact_bounds(eff_ub),
            )
            threshold = min(incumbent, float(objective))
            if self._covers(bound, threshold):
                record["cert"] = {
                    "kind": "duals",
                    "y_ub": {str(i): float(v) for i, v in exact_ub.items()},
                    "y_eq": {str(i): float(v) for i, v in exact_eq.items()},
                }
        self._write(record)
        return float(exact_obj)

    def emit_incumbent(
        self, values: np.ndarray, objective: float
    ) -> Optional[float]:
        """Heuristically-found feasible point, not tied to the tree.

        Used when a primal heuristic (the leaf MILP sub-solve, LP
        diving, or incumbent polishing) finds an improving solution
        outside the logged branching structure: the point is globally
        certifiable (bounds, integrality, residuals, exact objective)
        and so lowers the checker's z*, but it closes no subtree — the
        node it was found at stays open and is closed by ordinary
        branch/prune records.  The point is pre-validated with the
        checker's own exact feasibility test; an invalid point is *not*
        written (the run would otherwise refute) and ``None`` is
        returned so the caller skips adoption.  Otherwise returns the
        exact recorded objective for incumbent adoption.
        """
        x_sparse = {
            str(j): float(v)
            for j, v in enumerate(np.asarray(values, dtype=float))
            if v != 0.0
        }
        exact_x = {int(k): Fraction(v) for k, v in x_sparse.items()}
        if verify_point(self.exact, exact_x, Fraction(self.int_tol)) is not None:
            return None
        exact_obj = exact_objective(self.exact, exact_x)
        self._write(
            {
                "kind": KIND_INCUMBENT,
                "x": x_sparse,
                "objective": float(exact_obj),
            }
        )
        return float(exact_obj)

    def emit_forfeit(
        self, pid: str, cause: str, lb: np.ndarray, ub: np.ndarray
    ) -> None:
        record: Record = {"kind": KIND_FORFEIT, "id": pid, "cause": cause}
        record.update(self._box_json(lb, ub))
        self._write(record)

    # -- run boundaries -------------------------------------------------

    def emit_resume(
        self, frontier: Sequence[Tuple[str, np.ndarray, np.ndarray]]
    ) -> None:
        self._write(
            {
                "kind": KIND_RESUME,
                "frontier": [
                    {"id": pid, **self._box_json(lb, ub)}
                    for pid, lb, ub in frontier
                ],
            }
        )

    def emit_result(
        self,
        status: str,
        objective: Optional[float],
        bound: Optional[float],
        exactness_lost: bool,
    ) -> None:
        self._write(
            {
                "kind": KIND_RESULT,
                "status": status,
                "objective": (
                    float(objective)
                    if objective is not None and math.isfinite(objective)
                    else None
                ),
                "bound": (
                    float(bound)
                    if bound is not None and math.isfinite(bound)
                    else None
                ),
                "exactness_lost": bool(exactness_lost),
            }
        )


class ProofWriter(ProofSink):
    """File-backed sink: owns the artifact, one flushed line per record."""

    def __init__(
        self,
        path: "str | Path",
        form: StandardForm,
        *,
        objective_is_integral: bool,
        int_tol: float,
        mode: str = "sequential",
        resume: bool = False,
        base_form: Optional[StandardForm] = None,
        cut_records: Sequence[Record] = (),
    ) -> None:
        """``resume=True`` appends to an existing same-fingerprint log
        (refusing a foreign one, truncating a torn tail); otherwise any
        leftover file is overwritten — a fresh search is a fresh proof."""
        super().__init__(
            form,
            objective_is_integral=objective_is_integral,
            int_tol=int_tol,
            base_form=base_form,
            cut_records=cut_records,
        )
        self.path = Path(path)
        # The header fingerprint binds the artifact to the *base*
        # formulation the header embeds; cut rows are re-proven from
        # their own records at audit time.
        self.fingerprint = form_fingerprint(self.base_form)
        self.resume_epoch = 0
        self.continued = (
            resume and self.path.exists() and self.path.stat().st_size > 0
        )
        ops = fsio.current_ops()
        try:
            if self.continued:
                self._validate_existing()
                self._handle: "IO[bytes]" = ops.open_append(self.path)
            else:
                self._handle = ops.open_write(self.path)
        except OSError as exc:
            raise self._disk_error(exc, "open") from exc
        except ArtifactError as exc:
            raise ProofWriteError(
                f"cannot open proof log {self.path}: {exc}",
                path=str(self.path), cause=exc.cause or "io",
            ) from exc
        if not self.continued:
            header: Record = {
                "kind": KIND_HEADER,
                # Cut-less artifacts stay on v1 so older checkers keep
                # reading them; the cut block bumps the schema.
                "schema": (
                    PROOF_SCHEMA_V2 if self.cut_records else PROOF_SCHEMA
                ),
                "fingerprint": self.fingerprint,
                "form": self.form_json,
                "objective_is_integral": self.obj_integral,
                "int_tol": self.int_tol,
                "mode": mode,
            }
            if self.cut_records:
                header["cuts"] = len(self.cut_records)
            self._write(header)
            for cut_record in self.cut_records:
                self._write(dict(cut_record))

    def _disk_error(self, exc: OSError, verb: str) -> ProofWriteError:
        """Disk trouble with the proof log, as a :class:`~repro.errors.
        SolverError` subtype: the partitioner's degradation path rescues
        it like any other solver failure (honest fallback, no crash)."""
        cause = "enospc" if exc.errno == errno.ENOSPC else "io"
        return ProofWriteError(
            f"cannot {verb} proof log {self.path}: {exc}",
            path=str(self.path), cause=cause,
        )

    def _validate_existing(self) -> None:
        """Refuse a foreign log; truncate a torn tail before appending."""
        read = read_proof_records(self.path)
        if not read.records:
            raise ProofLogMismatch(
                f"{self.path} exists but holds no usable proof header"
            )
        header = read.records[0][1]
        if (
            header.get("kind") != KIND_HEADER
            or header.get("schema") not in PROOF_SCHEMAS
            or header.get("fingerprint") != self.fingerprint
        ):
            raise ProofLogMismatch(
                f"{self.path} was written for a different formulation "
                "(fingerprint mismatch) - refusing to append"
            )
        if header.get("cuts", 0) != len(self.cut_records):
            raise ProofLogMismatch(
                f"{self.path} was written with a different cut block "
                f"({header.get('cuts', 0)} cuts recorded, "
                f"{len(self.cut_records)} in this run) - refusing to append"
            )
        self.resume_epoch = sum(
            1 for _, rec in read.records if rec.get("kind") == KIND_RESUME
        )
        if read.torn_tail:
            truncate_torn_tail(self.path)

    def _emit(self, record: Record) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        ops = fsio.current_ops()
        try:
            ops.write(self._handle, line.encode("utf-8") + b"\n")
            ops.flush(self._handle)
        except OSError as exc:
            raise self._disk_error(exc, "append to") from exc

    def append_batch(self, records: Iterable[Record]) -> None:
        """Append pre-sealed records shipped from a worker buffer."""
        for record in records:
            kind = str(record.get("kind"))
            self.counts[kind] = self.counts.get(kind, 0) + 1
            if kind == KIND_FORFEIT:
                self.forfeit_count += 1
            self._emit(record)

    def close(self) -> None:
        if not self._handle.closed:
            ops = fsio.current_ops()
            try:
                ops.flush(self._handle)
                ops.fsync(self._handle)
            except OSError as exc:
                raise self._disk_error(exc, "finalize") from exc
            finally:
                self._handle.close()


class ProofBuffer(ProofSink):
    """In-memory sink for parallel workers: drained per chunk into the
    ``done`` message; a crashed chunk's buffer is deliberately lost."""

    def __init__(
        self,
        form: StandardForm,
        *,
        objective_is_integral: bool,
        int_tol: float,
    ) -> None:
        super().__init__(
            form, objective_is_integral=objective_is_integral, int_tol=int_tol
        )
        self._records: List[Record] = []

    def _emit(self, record: Record) -> None:
        self._records.append(record)

    def begin_chunk(self) -> None:
        self._records = []

    def drain(self) -> List[Record]:
        records, self._records = self._records, []
        return records
