"""Farkas-certificate extraction for infeasible branch-and-bound nodes.

SciPy's HiGHS interface reports *no* dual information on an infeasible
LP (``marginals`` come back ``None``), so the proof logger cannot read
an infeasibility certificate off the node solve itself.  Instead we
solve a **phase-1 elastic relaxation** over the node's bounds box::

    min  sum(s_ub) + sum(s_plus) + sum(s_minus)
    s.t. A_ub x - s_ub           <= b_ub
         A_eq x + s_plus - s_minus == b_eq
         l <= x <= u,   s >= 0

Its optimum is zero iff the node is feasible.  When it is positive,
the LP duals on the two row blocks are Farkas multipliers for the
original system: with ``y_ub <= 0``, ``y_eq`` free, the exact bound
``y_ub'b_ub + y_eq'b_eq + sum_j min(r_j l_j, r_j u_j) > 0`` (where
``r = -A_ub'y_ub - A_eq'y_eq``) proves no ``x`` in the box satisfies
the constraints.  The caller (:class:`~repro.ilp.certify.proof.
ProofSink`) re-validates that inequality in exact rational arithmetic
before anything reaches the log, so this module only needs to produce
*candidate* multipliers — a numerically sloppy certificate degrades to
a forfeit, never to a wrong proof.

This module imports SciPy and lives strictly on the logger side; the
independent checker never touches it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.ilp.standard_form import StandardForm

#: Phase-1 optima below this are treated as "actually feasible" —
#: no certificate is extractable (the node prune becomes a forfeit).
_PHASE1_TOL = 1e-9


def extract_farkas(
    form: StandardForm,
    lb: np.ndarray,
    ub: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Candidate Farkas multipliers ``(y_ub, y_eq)`` for a node box.

    Returns None when the elastic LP cannot produce usable duals
    (solved to zero infeasibility, solver failure, missing marginals).
    Never raises: certificate extraction is best-effort by design.
    """
    n = form.num_vars
    m_ub = int(form.b_ub.shape[0])
    m_eq = int(form.b_eq.shape[0])
    n_slack = m_ub + 2 * m_eq

    cost = np.concatenate([np.zeros(n), np.ones(n_slack)])

    blocks_ub = [form.a_ub.tocsr()]
    if m_ub:
        blocks_ub.append(-sparse.eye(m_ub, format="csr"))
    if m_eq:
        blocks_ub.append(sparse.csr_matrix((m_ub, 2 * m_eq)))
    a_ub = sparse.hstack(blocks_ub, format="csr") if m_ub else None

    a_eq = None
    if m_eq:
        blocks_eq = [form.a_eq.tocsr()]
        if m_ub:
            blocks_eq.append(sparse.csr_matrix((m_eq, m_ub)))
        blocks_eq.append(sparse.eye(m_eq, format="csr"))
        blocks_eq.append(-sparse.eye(m_eq, format="csr"))
        a_eq = sparse.hstack(blocks_eq, format="csr")

    bounds = np.empty((n + n_slack, 2))
    bounds[:n, 0] = lb
    bounds[:n, 1] = ub
    bounds[n:, 0] = 0.0
    bounds[n:, 1] = np.inf

    try:
        result = linprog(
            cost,
            A_ub=a_ub,
            b_ub=form.b_ub if m_ub else None,
            A_eq=a_eq,
            b_eq=form.b_eq if m_eq else None,
            bounds=bounds,
            method="highs",
        )
    except (ValueError, TypeError):
        return None
    if not result.success or result.fun is None:
        return None
    if result.fun <= _PHASE1_TOL:
        return None

    y_ub = np.zeros(m_ub)
    y_eq = np.zeros(m_eq)
    ineqlin = getattr(result, "ineqlin", None)
    if m_ub:
        marginals = getattr(ineqlin, "marginals", None)
        if marginals is None:
            return None
        y_ub = np.asarray(marginals, dtype=float)
    eqlin = getattr(result, "eqlin", None)
    if m_eq:
        marginals = getattr(eqlin, "marginals", None)
        if marginals is None:
            return None
        y_eq = np.asarray(marginals, dtype=float)
    if not (np.all(np.isfinite(y_ub)) and np.all(np.isfinite(y_eq))):
        return None
    return y_ub, y_eq
