"""Certified branch-and-bound solves: proof logging + independent audit.

The package splits along a strict dependency boundary:

* :mod:`repro.ilp.certify.records` — the ``repro.bnb_proof/v1`` JSONL
  schema and the crash-tolerant reader.  Stdlib only.
* :mod:`repro.ilp.certify.checker` — the independent static checker:
  replays a proof log with :class:`fractions.Fraction` exact rational
  arithmetic and no LP solver (stdlib only, by design and by test).
* :mod:`repro.ilp.certify.proof` — the logger side wired into
  :class:`~repro.ilp.branch_bound.BranchAndBound` (numpy allowed; it
  lives inside the solver process).
* :mod:`repro.ilp.certify.certificates` — Farkas-certificate
  extraction for infeasible nodes via a phase-1 elastic LP (scipy
  allowed; logger side only).
* :mod:`repro.ilp.certify.audit` — the ``repro audit`` CLI entry
  point (imports records + checker only).

Import the heavy pieces from their modules directly; this package
``__init__`` re-exports only the solver-free surface so
``import repro.ilp.certify`` never drags in an LP backend.
"""

from repro.ilp.certify.checker import AuditReport, audit_proof
from repro.ilp.certify.records import (
    PROOF_SCHEMA,
    ProofReadResult,
    read_proof_records,
)

__all__ = [
    "PROOF_SCHEMA",
    "ProofReadResult",
    "AuditReport",
    "audit_proof",
    "read_proof_records",
]
