"""The ``repro audit`` CLI: independently verify a solve's proof log.

Imports only :mod:`repro.ilp.certify.records` and
:mod:`repro.ilp.certify.checker` — by design there is no path from
here to an LP backend, numpy, or the solver that wrote the log.

Exit status: 0 CERTIFIED, 1 CERTIFIED-WITH-FORFEITURES, 2 REFUTED,
3 the log could not be read at all.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.ilp.certify.checker import AuditReport, audit_proof


def build_audit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tps audit",
        description="Replay a repro.bnb_proof/v1 branch-and-bound proof "
        "log with exact rational arithmetic (no LP solver) and report "
        "CERTIFIED / CERTIFIED-WITH-FORFEITURES / REFUTED.  Exit "
        "status: 0 certified, 1 certified with forfeited subtrees, "
        "2 refuted, 3 unreadable log.",
    )
    parser.add_argument("proof", help="path to the proof log (JSONL)")
    parser.add_argument(
        "--expect-fingerprint",
        metavar="HEX",
        default=None,
        help="additionally require the log's formulation fingerprint "
        "to equal this SHA-256 hex digest",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full audit report as JSON instead of text",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print nothing; communicate through the exit status only",
    )
    return parser


def _print_report(report: AuditReport) -> None:
    print(f"verdict: {report.verdict}")
    if report.reason is not None:
        where = f" (line {report.line})" if report.line is not None else ""
        print(f"  first failing record{where}: {report.reason}")
    if report.claimed_status is not None:
        objective = (
            "-"
            if report.claimed_objective is None
            else f"{report.claimed_objective:g}"
        )
        print(f"  claimed: {report.claimed_status} objective={objective}")
    if report.certified_objective is not None:
        print(f"  certified incumbent: {report.certified_objective:g}")
    if report.counts:
        summary = ", ".join(
            f"{kind}={count}" for kind, count in sorted(report.counts.items())
        )
        print(f"  records: {summary}")
    if report.torn_tail:
        print("  note: torn final line dropped (interrupted write)")
    for forfeit in report.forfeits:
        print(f"  forfeited subtree {forfeit.node}: {forfeit.cause}")


def audit_main(argv: "Optional[List[str]]" = None) -> int:
    args = build_audit_parser().parse_args(argv)
    try:
        report = audit_proof(
            args.proof, expected_fingerprint=args.expect_fingerprint
        )
    except OSError as exc:
        if not args.quiet:
            print(f"cannot read proof log {args.proof!r}: {exc}", file=sys.stderr)
        return 3
    if not args.quiet:
        if args.as_json:
            print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        else:
            _print_report(report)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(audit_main())
