"""Independent exact-arithmetic audit of a branch-and-bound proof log.

This module re-verifies a ``repro.bnb_proof/v1`` artifact with
:class:`fractions.Fraction` rational arithmetic — **no LP solver, no
floating point, no numpy**.  Every float in the log is lifted exactly
(``Fraction(float)`` is the precise binary value), and every claim is
re-derived from first principles:

* **Dual bounds** (weak duality): for the node LP
  ``min c'x  s.t.  A_ub x <= b_ub, A_eq x = b_eq, l <= x <= u``
  and any multipliers ``y_ub <= 0``, ``y_eq`` free, the quantity
  ``D = y_ub'b_ub + y_eq'b_eq + sum_j min(r_j l_j, r_j u_j)`` with
  ``r = c - A_ub'y_ub - A_eq'y_eq`` satisfies ``D <= c'x`` for every
  ``x`` in the node's box that satisfies the constraints.  The checker
  clamps positive ``y_ub`` entries to zero (still sound) and evaluates
  ``D`` exactly — a recorded dual vector can therefore never *forge* a
  bound, only fail to reach the claimed threshold.
* **Farkas certificates**: the same evaluation with ``c = 0``; a
  strictly positive ``D`` proves the node's constraint system empty.
* **Reduced-cost fixes**: re-derived from the recorded *root* duals
  over the root box; a fix excluding ``x_j >= l_j + 1`` must show
  ``D_root + r_j`` at or above the final incumbent's threshold.
* **Partition coverage**: children must split their parent's box on an
  integer variable at adjacent integer bounds; every extra tightening
  (SOS1 propagation) must be implied by a recorded constraint row via
  exact interval arithmetic; every reduced-cost clip must match a
  certified fix.  At the end of the log no subtree may remain open.
* **Cut rows** (schema v2): each ``cut`` record's derivation
  certificate is re-proven against the form extended by every earlier
  cut — a cover's members must exactly overrun their capacity row, a
  clique's every pair must be forbidden by a justifying row, an
  implied bound must follow from exact row interval arithmetic with
  the trigger variable fixed — and only then is the row appended to
  the working form all later certificates are checked against.  An
  unverifiable cut record refutes the log (the writer drops such cuts
  honestly instead of recording them).
* **The incumbent**: every claimed integer-feasible point is checked
  against the embedded form (bounds, integrality, residuals, exact
  objective), and the final claimed objective must match the best
  certified point.

Prunes are checked against the **final** certified incumbent ``z*``,
never against recorded thresholds: incumbents only improve during a
run, so a prune valid against any intermediate incumbent is valid
against ``z*`` — this makes the audit independent of solver timeline,
parallel interleavings, and checkpoint/resume boundaries.  With an
integral objective the uniform condition is ``D > z* - 1`` exactly;
otherwise ``D >= z* - 1e-6`` (certification up to tolerance).

Subtrees closed without proof (``forfeit`` records, uncertified
leaves) downgrade the verdict to CERTIFIED-WITH-FORFEITURES and are
enumerated; any claim that fails re-verification is REFUTED with the
first failing record.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.ilp.certify.records import (
    KIND_BRANCH,
    KIND_CUT,
    KIND_FORFEIT,
    KIND_HEADER,
    KIND_INCUMBENT,
    KIND_INTEGRAL,
    KIND_PRUNE,
    KIND_RC_FIX,
    KIND_RESULT,
    KIND_RESUME,
    KIND_ROOT,
    PROOF_SCHEMAS,
    Record,
    RECORD_KINDS,
    read_proof_records,
    record_checksum_ok,
)

VERDICT_CERTIFIED = "CERTIFIED"
VERDICT_FORFEITURES = "CERTIFIED-WITH-FORFEITURES"
VERDICT_REFUTED = "REFUTED"

#: Scaled tolerance for float-vs-exact comparisons (feasibility
#: residuals, claimed-vs-certified objectives).  A rational constant —
#: the checker still never computes in floats.
FEAS_TOL = Fraction(1, 10**6)

#: A bound value: exact rational, or None for the infinite side.
Bound = Optional[Fraction]


class ProofCheckError(Exception):
    """Internal control flow: a record failed verification."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _fr(value: Any) -> Fraction:
    """Lift a JSON number to an exact rational; rejects non-finite."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProofCheckError(f"expected a number, got {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        raise ProofCheckError(f"expected a finite number, got {value!r}")
    return Fraction(value)


def _fr_bound(value: Any) -> Bound:
    """Lift a bound value; infinities (either sign) become None."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProofCheckError(f"expected a bound, got {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return Fraction(value)


def _lb_le(a: Bound, b: Bound) -> bool:
    """``a <= b`` where None means -inf (lower-bound side)."""
    if a is None:
        return True
    if b is None:
        return False
    return a <= b


def _ub_le(a: Bound, b: Bound) -> bool:
    """``a <= b`` where None means +inf (upper-bound side)."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


@dataclass
class ExactMatrix:
    """A CSR matrix lifted to exact rationals."""

    nrows: int
    data: List[Fraction]
    indices: List[int]
    indptr: List[int]
    index_width: int

    @classmethod
    def from_json(cls, entry: Mapping[str, Any], ncols: int) -> "ExactMatrix":
        indptr = [int(v) for v in entry["indptr"]]
        indices = [int(v) for v in entry["indices"]]
        data = [_fr(v) for v in entry["data"]]
        nrows = len(indptr) - 1
        if nrows < 0 or indptr[0] != 0 or indptr[-1] != len(data):
            raise ProofCheckError("malformed CSR index pointers")
        if len(indices) != len(data):
            raise ProofCheckError("CSR indices/data length mismatch")
        if any(j < 0 or j >= ncols for j in indices):
            raise ProofCheckError("CSR column index out of range")
        if any(indptr[i] > indptr[i + 1] for i in range(nrows)):
            raise ProofCheckError("CSR index pointers not monotone")
        return cls(
            nrows=nrows,
            data=data,
            indices=indices,
            indptr=indptr,
            index_width=int(entry.get("index_width", 4)),
        )

    def row_entries(self, row: int) -> Iterable[Tuple[int, Fraction]]:
        for k in range(self.indptr[row], self.indptr[row + 1]):
            yield self.indices[k], self.data[k]


@dataclass
class ExactForm:
    """The embedded standard form, lifted to exact rationals.

    ``raw`` keeps the original JSON numbers so the formulation
    fingerprint (a hash over the writer's float64 byte layout) can be
    recomputed without numpy.
    """

    n: int
    c: List[Fraction]
    a_ub: ExactMatrix
    b_ub: List[Fraction]
    a_eq: ExactMatrix
    b_eq: List[Fraction]
    lb: List[Bound]
    ub: List[Bound]
    integrality: List[bool]
    raw: Mapping[str, Any]

    @classmethod
    def from_header(cls, form: Mapping[str, Any]) -> "ExactForm":
        n = int(form["n"])
        c = [_fr(v) for v in form["c"]]
        lb = [_fr_bound(v) for v in form["lb"]]
        ub = [_fr_bound(v) for v in form["ub"]]
        integrality = [bool(v) for v in form["integrality"]]
        if not (len(c) == len(lb) == len(ub) == len(integrality) == n):
            raise ProofCheckError("embedded form vector lengths disagree")
        a_ub = ExactMatrix.from_json(form["a_ub"], n)
        a_eq = ExactMatrix.from_json(form["a_eq"], n)
        b_ub = [_fr(v) for v in form["b_ub"]]
        b_eq = [_fr(v) for v in form["b_eq"]]
        if len(b_ub) != a_ub.nrows or len(b_eq) != a_eq.nrows:
            raise ProofCheckError("embedded form rhs lengths disagree")
        return cls(
            n=n, c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            lb=lb, ub=ub, integrality=integrality, raw=form,
        )

    def fingerprint(self) -> str:
        """Recompute the writer's SHA-256 formulation fingerprint.

        Byte-identical to
        :func:`repro.ilp.resilience.checkpoint.form_fingerprint` on the
        writing platform: float64 for every numeric vector and matrix
        payload, the recorded integer width for CSR index arrays.
        """

        def floats(values: Iterable[Any]) -> bytes:
            seq = [float(v) for v in values]
            return struct.pack(f"={len(seq)}d", *seq)

        def ints(values: Iterable[Any], width: int) -> bytes:
            code = {4: "i", 8: "q"}.get(width)
            if code is None:
                raise ProofCheckError(
                    f"unsupported CSR index width {width}"
                )
            seq = [int(v) for v in values]
            return struct.pack(f"={len(seq)}{code}", *seq)

        digest = hashlib.sha256()
        raw = self.raw
        for key in ("c", "b_ub", "b_eq", "lb", "ub", "integrality"):
            digest.update(floats(raw[key]))
        for key in ("a_ub", "a_eq"):
            entry = raw[key]
            width = int(entry.get("index_width", 4))
            digest.update(floats(entry["data"]))
            digest.update(ints(entry["indices"], width))
            digest.update(ints(entry["indptr"], width))
        return digest.hexdigest()


@dataclass
class Box:
    """A node's bounds box as exact deltas against the root bounds."""

    lbd: Dict[int, Bound] = field(default_factory=dict)
    ubd: Dict[int, Bound] = field(default_factory=dict)

    @classmethod
    def from_record(cls, record: Mapping[str, Any], n: int) -> "Box":
        box = cls()
        for key, store in (("lb", box.lbd), ("ub", box.ubd)):
            for raw_idx, value in dict(record.get(key) or {}).items():
                j = int(raw_idx)
                if j < 0 or j >= n:
                    raise ProofCheckError(
                        f"bound delta for out-of-range variable {j}"
                    )
                store[j] = _fr_bound(value)
        return box

    def lb(self, form: ExactForm, j: int) -> Bound:
        return self.lbd.get(j, form.lb[j])

    def ub(self, form: ExactForm, j: int) -> Bound:
        return self.ubd.get(j, form.ub[j])

    def touched(self, other: "Box") -> Set[int]:
        return (
            set(self.lbd) | set(self.ubd) | set(other.lbd) | set(other.ubd)
        )

    def materialize(self, form: ExactForm) -> Tuple[List[Bound], List[Bound]]:
        lb = list(form.lb)
        ub = list(form.ub)
        for j, value in self.lbd.items():
            lb[j] = value
        for j, value in self.ubd.items():
            ub[j] = value
        return lb, ub

    def copy(self) -> "Box":
        return Box(dict(self.lbd), dict(self.ubd))

    def contained_in(self, form: ExactForm, outer: "Box") -> bool:
        for j in self.touched(outer):
            if not _lb_le(outer.lb(form, j), self.lb(form, j)):
                return False
            if not _ub_le(self.ub(form, j), outer.ub(form, j)):
                return False
        return True

    def deltas_for_display(self) -> Dict[str, Dict[str, Optional[float]]]:
        return {
            "lb": {
                str(j): (None if v is None else float(v))
                for j, v in sorted(self.lbd.items())
            },
            "ub": {
                str(j): (None if v is None else float(v))
                for j, v in sorted(self.ubd.items())
            },
        }


def parse_dual_vector(
    entry: Any, nrows: int, what: str
) -> Dict[int, Fraction]:
    """Parse a sparse dual vector ``{"row": value}`` with range checks."""
    duals: Dict[int, Fraction] = {}
    for raw_idx, value in dict(entry or {}).items():
        i = int(raw_idx)
        if i < 0 or i >= nrows:
            raise ProofCheckError(f"{what} dual for out-of-range row {i}")
        duals[i] = _fr(value)
    return duals


def dual_bound(
    form: ExactForm,
    c: Optional[List[Fraction]],
    y_ub: Mapping[int, Fraction],
    y_eq: Mapping[int, Fraction],
    lb: List[Bound],
    ub: List[Bound],
) -> Optional[Fraction]:
    """Exact weak-duality bound over a bounds box; None means -inf.

    ``c=None`` means the zero objective (Farkas evaluation).  Positive
    ``y_ub`` entries are clamped to zero, which can only weaken the
    bound — so any recorded vector yields a *sound* value.
    """
    r: List[Fraction] = list(c) if c is not None else [Fraction(0)] * form.n
    total = Fraction(0)
    for i, yi in y_ub.items():
        if yi >= 0:
            continue  # clamp to the valid sign (and skip zeros)
        total += yi * form.b_ub[i]
        for j, a in form.a_ub.row_entries(i):
            r[j] -= yi * a
    for i, yi in y_eq.items():
        if not yi:
            continue
        total += yi * form.b_eq[i]
        for j, a in form.a_eq.row_entries(i):
            r[j] -= yi * a
    for j in range(form.n):
        rj = r[j]
        if not rj:
            continue
        bound = lb[j] if rj > 0 else ub[j]
        if bound is None:
            return None
        total += rj * bound
    return total


def reduced_cost_vector(
    form: ExactForm,
    y_ub: Mapping[int, Fraction],
    y_eq: Mapping[int, Fraction],
) -> List[Fraction]:
    """Exact ``r = c - A_ub'y_ub - A_eq'y_eq`` (positive y_ub clamped)."""
    r = list(form.c)
    for i, yi in y_ub.items():
        if yi >= 0:
            continue
        for j, a in form.a_ub.row_entries(i):
            r[j] -= yi * a
    for i, yi in y_eq.items():
        if not yi:
            continue
        for j, a in form.a_eq.row_entries(i):
            r[j] -= yi * a
    return r


def exact_objective(form: ExactForm, x: Mapping[int, Fraction]) -> Fraction:
    total = Fraction(0)
    for j, value in x.items():
        cj = form.c[j]
        if cj:
            total += cj * value
    return total


def verify_point(
    form: ExactForm,
    x: Mapping[int, Fraction],
    int_tol: Fraction,
) -> Optional[str]:
    """Exact feasibility + integrality check of a claimed point.

    Residual tolerances scale with the rhs magnitude (the claimed
    point's continuous coordinates come from a float LP solve; the
    *certificates* elsewhere are what carry the proof, this check only
    pins the incumbent to the model).  Returns a reason, or None.
    """
    for j in range(form.n):
        value = x.get(j, Fraction(0))
        lo, hi = form.lb[j], form.ub[j]
        slack = FEAS_TOL * (
            1
            + max(
                abs(lo) if lo is not None else Fraction(0),
                abs(hi) if hi is not None else Fraction(0),
            )
        )
        if lo is not None and value < lo - slack:
            return f"x{j} below its lower bound"
        if hi is not None and value > hi + slack:
            return f"x{j} above its upper bound"
        if form.integrality[j]:
            nearest = Fraction(round(value))
            if abs(value - nearest) > int_tol:
                return f"x{j} is not integral"
    for row in range(form.a_ub.nrows):
        lhs = Fraction(0)
        for j, a in form.a_ub.row_entries(row):
            value = x.get(j)
            if value is not None:
                lhs += a * value
        rhs = form.b_ub[row]
        if lhs > rhs + FEAS_TOL * (1 + abs(rhs)):
            return f"inequality row {row} violated"
    for row in range(form.a_eq.nrows):
        lhs = Fraction(0)
        for j, a in form.a_eq.row_entries(row):
            value = x.get(j)
            if value is not None:
                lhs += a * value
        rhs = form.b_eq[row]
        if abs(lhs - rhs) > FEAS_TOL * (1 + abs(rhs)):
            return f"equality row {row} violated"
    return None


# ----------------------------------------------------------------------
# cut records (schema v2): exact re-derivation of root cutting planes


def _parse_cut_coeffs(entry: Any, n: int) -> Dict[int, Fraction]:
    """Parse a cut row's sparse coefficient vector."""
    coeffs = parse_point(entry, n)
    if not coeffs:
        raise ProofCheckError("cut row has no coefficients")
    for j, a in coeffs.items():
        if not a:
            raise ProofCheckError(f"cut row has a zero coefficient on x{j}")
    return coeffs


def _binary_members(form: ExactForm, entry: Any) -> List[int]:
    """Parse a member list, requiring distinct integer 0-1 variables."""
    if not isinstance(entry, list) or not entry:
        raise ProofCheckError("cut certificate has no members")
    members: List[int] = []
    seen: Set[int] = set()
    for raw in entry:
        j = int(raw)
        if j < 0 or j >= form.n:
            raise ProofCheckError(f"cut member x{j} out of range")
        if j in seen:
            raise ProofCheckError(f"cut member x{j} repeated")
        seen.add(j)
        if not form.integrality[j]:
            raise ProofCheckError(f"cut member x{j} is not integer")
        lo, hi = form.lb[j], form.ub[j]
        if lo is None or lo < 0 or hi is None or hi > 1:
            raise ProofCheckError(f"cut member x{j} is not binary")
        members.append(j)
    return members


def _row_activity_bound(
    form: ExactForm,
    matrix: ExactMatrix,
    row: int,
    fixed: Mapping[int, Fraction],
    maximize: bool,
) -> Fraction:
    """Exact min (or max) activity of one row with some variables fixed.

    Unfixed variables sit at the root bound that minimizes (maximizes)
    their contribution; an infinite bound on a contributing variable
    means the activity is unbounded and the certificate fails.
    """
    total = Fraction(0)
    for j, a in matrix.row_entries(row):
        if not a:
            continue
        value = fixed.get(j)
        if value is not None:
            total += a * value
            continue
        take_ub = (a > 0) == maximize
        bound = form.ub[j] if take_ub else form.lb[j]
        if bound is None:
            raise ProofCheckError(
                f"cut row {row} activity is unbounded over the root box"
            )
        total += a * bound
    return total


def _implied_upper_from_row(
    form: ExactForm,
    lb: List[Bound],
    ub: List[Bound],
    row_kind: str,
    row: int,
    var: int,
) -> Fraction:
    """Exact implied upper bound on ``x_var`` from one row over a box.

    For a row ``sum_j a_j x_j (<=|=) rhs`` with ``a_var > 0`` every
    point in the box satisfies ``x_var <= (rhs - minrest) / a_var``
    where ``minrest`` is the other terms' minimum activity.
    """
    if row_kind == "eq":
        matrix, rhs_vec = form.a_eq, form.b_eq
    elif row_kind == "ub":
        matrix, rhs_vec = form.a_ub, form.b_ub
    else:
        raise ProofCheckError(f"unknown cut row kind {row_kind!r}")
    if row < 0 or row >= matrix.nrows:
        raise ProofCheckError(f"cut row {row} out of range")
    a_var: Optional[Fraction] = None
    rest = Fraction(0)
    for j, a in matrix.row_entries(row):
        if j == var:
            a_var = a
            continue
        if not a:
            continue
        bound = lb[j] if a > 0 else ub[j]
        if bound is None:
            raise ProofCheckError(
                f"cut row {row} is unbounded over the box"
            )
        rest += a * bound
    if a_var is None or a_var <= 0:
        raise ProofCheckError(
            f"cut row {row} has no positive coefficient on x{var}"
        )
    return (rhs_vec[row] - rest) / a_var


def _verify_cover_cut(
    form: ExactForm,
    coeffs: Mapping[int, Fraction],
    rhs: Fraction,
    cert: Mapping[str, Any],
) -> Optional[str]:
    """Cover cut ``sum_{j in S} x_j <= |S| - 1``.

    Sound iff setting every member to 1 provably overruns the cited
    capacity row even with all other variables at their most-forgiving
    bounds — then no integer-feasible point has all members at 1, and
    binary members give the cardinality bound.
    """
    members = _binary_members(form, cert.get("members"))
    if len(members) < 2:
        return "cover needs at least two members"
    row = int(cert["row"])
    if row < 0 or row >= form.a_ub.nrows:
        return f"cover row {row} out of range"
    if rhs != len(members) - 1:
        return "cover rhs is not |members| - 1"
    if set(coeffs) != set(members) or any(coeffs[j] != 1 for j in members):
        return "cover coefficients are not unit on its members"
    fixed = {j: Fraction(1) for j in members}
    minact = _row_activity_bound(form, form.a_ub, row, fixed, maximize=False)
    if not minact > form.b_ub[row]:
        return "cover members do not overrun their capacity row"
    return None


def _pair_conflicts(
    form: ExactForm, p: int, q: int, row_kind: str, row: int
) -> bool:
    """Whether one recorded row forbids ``x_p = x_q = 1``."""
    if row_kind == "ub":
        matrix, rhs_vec, is_eq = form.a_ub, form.b_ub, False
    elif row_kind == "eq":
        matrix, rhs_vec, is_eq = form.a_eq, form.b_eq, True
    else:
        raise ProofCheckError(f"unknown cut row kind {row_kind!r}")
    if row < 0 or row >= matrix.nrows:
        raise ProofCheckError(f"cut row {row} out of range")
    fixed = {p: Fraction(1), q: Fraction(1)}
    rhs = rhs_vec[row]
    if _row_activity_bound(form, matrix, row, fixed, maximize=False) > rhs:
        return True
    if is_eq:
        if _row_activity_bound(form, matrix, row, fixed, maximize=True) < rhs:
            return True
    return False


def _verify_clique_cut(
    form: ExactForm,
    coeffs: Mapping[int, Fraction],
    rhs: Fraction,
    cert: Mapping[str, Any],
) -> Optional[str]:
    """Clique cut ``sum_{j in Q} x_j <= 1``.

    Sound iff *every* unordered pair of members is forbidden from
    being simultaneously 1 by some recorded row (exact interval
    arithmetic with the pair fixed to 1).
    """
    members = _binary_members(form, cert.get("members"))
    if len(members) < 2:
        return "clique needs at least two members"
    if rhs != 1:
        return "clique rhs is not 1"
    if set(coeffs) != set(members) or any(coeffs[j] != 1 for j in members):
        return "clique coefficients are not unit on its members"
    pairs = cert.get("pairs")
    if not isinstance(pairs, list):
        return "clique certificate has no pair justifications"
    member_set = set(members)
    justified: Set[FrozenSet[int]] = set()
    for entry in pairs:
        p, q = int(entry[0]), int(entry[1])
        row_kind, row = str(entry[2]), int(entry[3])
        if p not in member_set or q not in member_set or p == q:
            return "clique pair is not two distinct members"
        if not _pair_conflicts(form, p, q, row_kind, row):
            return f"row {row} does not forbid x{p} and x{q} together"
        justified.add(frozenset((p, q)))
    for i, p in enumerate(members):
        for q in members[i + 1:]:
            if frozenset((p, q)) not in justified:
                return f"clique pair x{p}, x{q} has no justifying row"
    return None


def _verify_implied_bound_cut(
    form: ExactForm,
    coeffs: Mapping[int, Fraction],
    rhs: Fraction,
    cert: Mapping[str, Any],
) -> Optional[str]:
    """Implied-bound cut ``z + (lo0 - hi1) y <= lo0`` for binary ``y``.

    The generalized Glover-product tightening (the paper's eq. 28-32
    family, derived on demand): with ``y = 0`` the cited ``row0`` (or
    the root bound) must imply ``z <= lo0``, with ``y = 1`` the cited
    ``row1`` must imply ``z <= hi1``.  Either branch condition may be
    vacuous when the root bounds already pin ``y`` — the cut is then
    trivially valid on the live branch.
    """
    z = int(cert["z"])
    y = int(cert["y"])
    if z < 0 or z >= form.n or y < 0 or y >= form.n or z == y:
        return "implied-bound cut variables out of range"
    ylo, yhi = form.lb[y], form.ub[y]
    if (
        not form.integrality[y]
        or ylo is None or ylo < 0
        or yhi is None or yhi > 1
    ):
        return f"implied-bound trigger x{y} is not binary"
    lo0 = _fr(cert["lo0"])
    hi1 = _fr(cert["hi1"])
    if lo0 == hi1:
        return "implied-bound cut with equal branch bounds is vacuous"
    if rhs != lo0:
        return "implied-bound rhs does not match lo0"
    if set(coeffs) != {z, y} or coeffs[z] != 1 or coeffs[y] != lo0 - hi1:
        return "implied-bound coefficients do not match the certificate"
    for branch, target, key in ((0, lo0, "row0"), (1, hi1, "row1")):
        entry = cert.get(key)
        if entry is None:
            upper: Bound = form.ub[z]
            if upper is None:
                return (
                    f"x{z} has no finite upper bound on the "
                    f"y={branch} branch"
                )
        else:
            row_kind, row = str(entry[0]), int(entry[1])
            lb2: List[Bound] = list(form.lb)
            ub2: List[Bound] = list(form.ub)
            lb2[y] = Fraction(branch)
            ub2[y] = Fraction(branch)
            upper = _implied_upper_from_row(form, lb2, ub2, row_kind, row, z)
        if upper > target:
            return (
                f"the y={branch} branch does not imply the recorded "
                f"bound on x{z}"
            )
    return None


def verify_cut_record(
    form: ExactForm, record: Mapping[str, Any]
) -> Optional[str]:
    """Re-derive one ``cut`` record's validity from its certificate.

    ``form`` is the *working* exact form — the base form extended by
    every earlier verified cut, so certificates may cite prior cut
    rows.  Returns ``None`` when the recorded row is proven satisfied
    by every integer-feasible point, else the failure reason.  Never
    raises on malformed input.  The writer pre-validates candidate
    cuts through this same function, so generation and audit can never
    disagree on validity.
    """
    try:
        coeffs = _parse_cut_coeffs(record.get("coeffs"), form.n)
        rhs = _fr(record.get("rhs"))
        cert = record.get("cert")
        if not isinstance(cert, Mapping):
            return "cut record carries no certificate"
        family = record.get("family")
        if family == "cover":
            return _verify_cover_cut(form, coeffs, rhs, cert)
        if family == "clique":
            return _verify_clique_cut(form, coeffs, rhs, cert)
        if family == "implied_bound":
            return _verify_implied_bound_cut(form, coeffs, rhs, cert)
        return f"unknown cut family {family!r}"
    except ProofCheckError as exc:
        return exc.reason
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        return f"malformed cut record ({type(exc).__name__}: {exc})"


def append_cut_row(form: ExactForm, record: Mapping[str, Any]) -> None:
    """Append a verified cut to the working form's inequality system.

    Coefficients go in sorted column order — the same layout the
    solver's :func:`~repro.ilp.cuts.extend_standard_form` uses, so row
    indices and row contents agree between solver and checker.  The
    form's ``raw`` payload is untouched: the fingerprint stays the
    base form's.
    """
    coeffs = _parse_cut_coeffs(record.get("coeffs"), form.n)
    matrix = form.a_ub
    for j in sorted(coeffs):
        matrix.indices.append(j)
        matrix.data.append(coeffs[j])
    matrix.indptr.append(len(matrix.data))
    matrix.nrows += 1
    form.b_ub.append(_fr(record.get("rhs")))


@dataclass
class ForfeitEntry:
    """One unproven subtree surfaced by the audit."""

    node: str
    cause: str
    box: Dict[str, Dict[str, Optional[float]]]

    def as_dict(self) -> Dict[str, Any]:
        return {"node": self.node, "cause": self.cause, "box": self.box}


@dataclass
class AuditReport:
    """The audit's verdict plus everything needed to act on it."""

    verdict: str
    reason: Optional[str] = None
    line: Optional[int] = None
    claimed_status: Optional[str] = None
    claimed_objective: Optional[float] = None
    certified_objective: Optional[float] = None
    forfeits: List[ForfeitEntry] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    torn_tail: bool = False

    @property
    def exit_code(self) -> int:
        if self.verdict == VERDICT_CERTIFIED:
            return 0
        if self.verdict == VERDICT_FORFEITURES:
            return 1
        return 2

    def as_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "reason": self.reason,
            "line": self.line,
            "claimed_status": self.claimed_status,
            "claimed_objective": self.claimed_objective,
            "certified_objective": self.certified_objective,
            "forfeits": [f.as_dict() for f in self.forfeits],
            "counts": self.counts,
            "torn_tail": self.torn_tail,
        }


class _Replayer:
    """Streams the record sequence through the open-set automaton."""

    def __init__(self, form: ExactForm, header: Mapping[str, Any]) -> None:
        self.form = form
        self.obj_integral = bool(header.get("objective_is_integral", False))
        self.int_tol = _fr(header.get("int_tol", 1e-6))
        root = Box()
        self.open: Dict[str, Box] = {"root": root}
        self.seen_ids: Set[str] = {"root"}
        self.rc_raised_lb: Dict[int, Fraction] = {}
        self.rc_lowered_ub: Dict[int, Fraction] = {}
        self.root_y_ub: Optional[Dict[int, Fraction]] = None
        self.root_y_eq: Optional[Dict[int, Fraction]] = None
        self._root_r: Optional[List[Fraction]] = None
        self._root_bound: Optional[Fraction] = None
        self.forfeits: List[ForfeitEntry] = []
        self.pending_result: Optional[Record] = None
        self.z_star: Optional[Fraction] = None

    # -- shared helpers -------------------------------------------------

    def set_incumbent(self, z_star: Optional[Fraction]) -> None:
        self.z_star = z_star

    def _covers(self, bound: Optional[Fraction]) -> None:
        """A closed subtree's bound must beat the final incumbent."""
        if self.z_star is None:
            raise ProofCheckError(
                "bound certificate with no certified incumbent to beat"
            )
        if bound is None:
            raise ProofCheckError("dual bound is unbounded below")
        if self.obj_integral:
            if not bound > self.z_star - 1:
                raise ProofCheckError("dual bound below threshold")
        elif not bound >= self.z_star - FEAS_TOL:
            raise ProofCheckError("dual bound below threshold")

    def _pop_open(self, record: Record) -> Tuple[str, Box]:
        node = record.get("id")
        if not isinstance(node, str):
            raise ProofCheckError("record has no node id")
        stored = self.open.pop(node, None)
        if stored is None:
            raise ProofCheckError(f"node {node!r} is not open")
        return node, stored

    def _effective_box(self, record: Record, stored: Box) -> Box:
        """Validate the recorded effective box against the stored one.

        The box may only shrink, and every shrink must be exactly a
        certified reduced-cost clip.
        """
        eff = Box.from_record(record, self.form.n)
        form = self.form
        for j in eff.touched(stored):
            elb, blb = eff.lb(form, j), stored.lb(form, j)
            if elb != blb:
                if not _lb_le(blb, elb):
                    raise ProofCheckError(
                        f"node box grew at x{j} lower bound"
                    )
                if self.rc_raised_lb.get(j) != elb:
                    raise ProofCheckError(
                        f"x{j} lower bound tightened without justification"
                    )
            eub, bub = eff.ub(form, j), stored.ub(form, j)
            if eub != bub:
                if not _ub_le(eub, bub):
                    raise ProofCheckError(
                        f"node box grew at x{j} upper bound"
                    )
                if self.rc_lowered_ub.get(j) != eub:
                    raise ProofCheckError(
                        f"x{j} upper bound tightened without justification"
                    )
        return eff

    def _parse_cert_duals(
        self, cert: Mapping[str, Any]
    ) -> Tuple[Dict[int, Fraction], Dict[int, Fraction]]:
        y_ub = parse_dual_vector(
            cert.get("y_ub"), self.form.a_ub.nrows, "inequality"
        )
        y_eq = parse_dual_vector(
            cert.get("y_eq"), self.form.a_eq.nrows, "equality"
        )
        return y_ub, y_eq

    def _check_empty_box(self, box: Box) -> None:
        form = self.form
        for j in set(box.lbd) | set(box.ubd):
            lo, hi = box.lb(form, j), box.ub(form, j)
            if lo is not None and hi is not None and lo > hi:
                return
        raise ProofCheckError(
            "empty-box certificate over a non-empty box"
        )

    # -- record handlers ------------------------------------------------

    def handle(self, record: Record) -> None:
        kind = record.get("kind")
        if self.pending_result is not None and kind != KIND_RESUME:
            raise ProofCheckError("records continue after a result record")
        if kind == KIND_ROOT:
            self._on_root(record)
        elif kind == KIND_RC_FIX:
            self._on_rc_fix(record)
        elif kind == KIND_BRANCH:
            self._on_branch(record)
        elif kind == KIND_PRUNE:
            self._on_prune(record)
        elif kind == KIND_INTEGRAL:
            self._on_integral(record)
        elif kind == KIND_INCUMBENT:
            # Heuristic incumbent: fully verified (feasibility + exact
            # objective) in the collection pass; it attaches to no tree
            # node, so replay has nothing further to check.
            pass
        elif kind == KIND_FORFEIT:
            self._on_forfeit(record)
        elif kind == KIND_RESUME:
            self._on_resume(record)
        elif kind == KIND_RESULT:
            self.pending_result = record
        elif kind == KIND_CUT:
            raise ProofCheckError("cut record outside the header cut block")
        elif kind == KIND_HEADER:
            raise ProofCheckError("duplicate header record")
        else:
            raise ProofCheckError(f"unknown record kind {kind!r}")

    def _on_root(self, record: Record) -> None:
        self.root_y_ub, self.root_y_eq = self._parse_cert_duals(record)
        self._root_r = None
        self._root_bound = None

    def _root_justification(self) -> Tuple[List[Fraction], Fraction]:
        if self.root_y_ub is None or self.root_y_eq is None:
            raise ProofCheckError(
                "reduced-cost fix without a root dual record"
            )
        if self._root_r is None or self._root_bound is None:
            self._root_r = reduced_cost_vector(
                self.form, self.root_y_ub, self.root_y_eq
            )
            bound = dual_bound(
                self.form,
                self.form.c,
                self.root_y_ub,
                self.root_y_eq,
                list(self.form.lb),
                list(self.form.ub),
            )
            if bound is None:
                raise ProofCheckError("root dual bound is unbounded below")
            self._root_bound = bound
        return self._root_r, self._root_bound

    def _on_rc_fix(self, record: Record) -> None:
        j = int(record["var"])
        if j < 0 or j >= self.form.n or not self.form.integrality[j]:
            raise ProofCheckError(
                f"reduced-cost fix of a non-integer variable {j}"
            )
        side = record.get("side")
        bound = _fr_bound(record.get("bound"))
        if bound is None:
            raise ProofCheckError("reduced-cost fix at an infinite bound")
        r, root_bound = self._root_justification()
        if side == "lb":
            if self.form.lb[j] != bound:
                raise ProofCheckError(
                    f"fix of x{j} does not match the root lower bound"
                )
            if r[j] < 0:
                raise ProofCheckError(
                    f"fix of x{j} at lower bound with negative reduced cost"
                )
            self._covers(root_bound + r[j])
            self.rc_lowered_ub[j] = bound
        elif side == "ub":
            if self.form.ub[j] != bound:
                raise ProofCheckError(
                    f"fix of x{j} does not match the root upper bound"
                )
            if r[j] > 0:
                raise ProofCheckError(
                    f"fix of x{j} at upper bound with positive reduced cost"
                )
            self._covers(root_bound - r[j])
            self.rc_raised_lb[j] = bound
        else:
            raise ProofCheckError(f"unknown reduced-cost fix side {side!r}")

    def _implied_upper(
        self, box: Box, row_kind: str, row: int, var: int
    ) -> Fraction:
        """Exact implied upper bound on ``x_var`` from one row."""
        form = self.form
        if row_kind == "eq":
            matrix, rhs_vec = form.a_eq, form.b_eq
        elif row_kind == "ub":
            matrix, rhs_vec = form.a_ub, form.b_ub
        else:
            raise ProofCheckError(f"unknown tighten row kind {row_kind!r}")
        if row < 0 or row >= matrix.nrows:
            raise ProofCheckError(f"tighten row {row} out of range")
        a_var: Optional[Fraction] = None
        rest = Fraction(0)
        for j, a in matrix.row_entries(row):
            if j == var:
                a_var = a
                continue
            if not a:
                continue
            lo, hi = box.lb(form, j), box.ub(form, j)
            bound = lo if a > 0 else hi
            if bound is None:
                raise ProofCheckError(
                    f"tighten row {row} is unbounded over the box"
                )
            rest += a * bound
        if a_var is None or a_var <= 0:
            raise ProofCheckError(
                f"tighten row {row} has no positive coefficient on x{var}"
            )
        return (rhs_vec[row] - rest) / a_var

    def _on_branch(self, record: Record) -> None:
        node, stored = self._pop_open(record)
        eff = self._effective_box(record, stored)
        form = self.form
        var = int(record["var"])
        if var < 0 or var >= form.n or not form.integrality[var]:
            raise ProofCheckError(
                f"branch on non-integer variable {var}"
            )
        children = record.get("children")
        if not isinstance(children, list) or len(children) != 2:
            raise ProofCheckError("branch must produce exactly two children")
        down_rec, up_rec = children
        down = Box.from_record(down_rec, form.n)
        up = Box.from_record(up_rec, form.n)

        split = down.ub(form, var)
        if split is None or split.denominator != 1:
            raise ProofCheckError(
                f"down-child upper bound on x{var} is not an integer"
            )
        if up.lb(form, var) != split + 1:
            raise ProofCheckError(
                f"children do not split x{var} at adjacent integers"
            )

        expected_down = eff.copy()
        expected_down.ubd[var] = split
        self._require_same_box(down, expected_down, "down")

        expected_up = eff.copy()
        expected_up.lbd[var] = split + 1
        for tighten in record.get("tighten") or []:
            t_var = int(tighten["var"])
            if t_var < 0 or t_var >= form.n:
                raise ProofCheckError(
                    f"tighten of out-of-range variable {t_var}"
                )
            new_ub = _fr(tighten["ub"])
            implied = self._implied_upper(
                expected_up,
                str(tighten.get("row_kind")),
                int(tighten["row"]),
                t_var,
            )
            if implied > new_ub:
                raise ProofCheckError(
                    f"tightening of x{t_var} is not implied by its row"
                )
            expected_up.ubd[t_var] = new_ub
        self._require_same_box(up, expected_up, "up")

        for child_rec, child_box in ((down_rec, down), (up_rec, up)):
            child_id = child_rec.get("id")
            if not isinstance(child_id, str):
                raise ProofCheckError("child node has no id")
            if child_id in self.seen_ids:
                raise ProofCheckError(f"duplicate node id {child_id!r}")
            self.seen_ids.add(child_id)
            self.open[child_id] = child_box
        del node

    def _require_same_box(self, got: Box, expected: Box, which: str) -> None:
        form = self.form
        for j in got.touched(expected):
            if got.lb(form, j) != expected.lb(form, j) or got.ub(
                form, j
            ) != expected.ub(form, j):
                raise ProofCheckError(
                    f"{which}-child box does not match the split at x{j}"
                )

    def _on_prune(self, record: Record) -> None:
        node, stored = self._pop_open(record)
        eff = self._effective_box(record, stored)
        reason = record.get("reason")
        cert = record.get("cert")
        if not isinstance(cert, Mapping):
            raise ProofCheckError(f"prune of {node!r} carries no certificate")
        kind = cert.get("kind")
        if reason == "bound":
            if kind != "duals":
                raise ProofCheckError(
                    f"bound prune with certificate kind {kind!r}"
                )
            y_ub, y_eq = self._parse_cert_duals(cert)
            lb, ub = eff.materialize(self.form)
            self._covers(
                dual_bound(self.form, self.form.c, y_ub, y_eq, lb, ub)
            )
        elif reason in ("infeasible", "rcbox"):
            if kind == "empty_box":
                self._check_empty_box(eff)
            elif kind == "farkas" and reason == "infeasible":
                y_ub, y_eq = self._parse_cert_duals(cert)
                lb, ub = eff.materialize(self.form)
                gap = dual_bound(self.form, None, y_ub, y_eq, lb, ub)
                if gap is None or not gap > 0:
                    raise ProofCheckError(
                        "Farkas certificate does not prove infeasibility"
                    )
            else:
                raise ProofCheckError(
                    f"{reason} prune with certificate kind {kind!r}"
                )
        else:
            raise ProofCheckError(f"unknown prune reason {reason!r}")

    def _on_integral(self, record: Record) -> None:
        node, stored = self._pop_open(record)
        eff = self._effective_box(record, stored)
        form = self.form
        x = parse_point(record.get("x"), form.n)
        # Global feasibility was verified in the collection pass; here
        # the point must also live inside this node's box on every
        # branched variable (exact: branched bounds are integers and
        # integer coordinates were rounded by the writer).
        for j in set(eff.lbd) | set(eff.ubd):
            value = x.get(j, Fraction(0))
            slack = Fraction(0) if form.integrality[j] else FEAS_TOL
            lo, hi = eff.lb(form, j), eff.ub(form, j)
            if lo is not None and value < lo - slack:
                raise ProofCheckError(
                    f"claimed point leaves its node box at x{j}"
                )
            if hi is not None and value > hi + slack:
                raise ProofCheckError(
                    f"claimed point leaves its node box at x{j}"
                )
        cert = record.get("cert")
        if isinstance(cert, Mapping):
            y_ub, y_eq = self._parse_cert_duals(cert)
            lb, ub = eff.materialize(form)
            self._covers(dual_bound(form, form.c, y_ub, y_eq, lb, ub))
        else:
            self.forfeits.append(
                ForfeitEntry(
                    node=node,
                    cause="uncertified_leaf",
                    box=eff.deltas_for_display(),
                )
            )

    def _on_forfeit(self, record: Record) -> None:
        node, stored = self._pop_open(record)
        cause = record.get("cause")
        self.forfeits.append(
            ForfeitEntry(
                node=node,
                cause=cause if isinstance(cause, str) else "unknown",
                box=stored.deltas_for_display(),
            )
        )

    def _on_resume(self, record: Record) -> None:
        self.pending_result = None
        frontier: List[Tuple[str, Box]] = []
        entries = record.get("frontier")
        if not isinstance(entries, list):
            raise ProofCheckError("resume record has no frontier")
        for entry in entries:
            node = entry.get("id")
            if not isinstance(node, str):
                raise ProofCheckError("resume frontier node has no id")
            if node in self.seen_ids:
                raise ProofCheckError(f"duplicate node id {node!r}")
            self.seen_ids.add(node)
            frontier.append((node, Box.from_record(entry, self.form.n)))
        # Nothing open may be lost: every open subtree must be covered
        # by (contained in) a restored frontier node.  The restored
        # frontier is from a checkpoint at or before the log's tip, so
        # open nodes are descendants of (or identical to) its entries.
        for node, box in self.open.items():
            if not any(
                box.contained_in(self.form, fbox) for _, fbox in frontier
            ):
                raise ProofCheckError(
                    f"resume loses open subtree {node!r}"
                )
        self.open = dict(frontier)
        # Forfeited subtrees that the resume re-opens are back in play:
        # the continued search now owes a proof for them again.
        kept: List[ForfeitEntry] = []
        for forfeit in self.forfeits:
            fbox = _box_from_display(forfeit.box, self.form.n)
            if not any(
                fbox.contained_in(self.form, frontier_box)
                for _, frontier_box in frontier
            ):
                kept.append(forfeit)
        self.forfeits = kept


def parse_point(entry: Any, n: int) -> Dict[int, Fraction]:
    """Parse a sparse claimed point ``{"var": value}``."""
    x: Dict[int, Fraction] = {}
    for raw_idx, value in dict(entry or {}).items():
        j = int(raw_idx)
        if j < 0 or j >= n:
            raise ProofCheckError(
                f"claimed point has out-of-range variable {j}"
            )
        x[j] = _fr(value)
    return x


def _box_from_display(
    display: Mapping[str, Mapping[str, Optional[float]]], n: int
) -> Box:
    return Box.from_record(
        {"lb": dict(display.get("lb") or {}), "ub": dict(display.get("ub") or {})},
        n,
    )


def audit_proof(
    path: Union[str, Path],
    expected_fingerprint: Optional[str] = None,
) -> AuditReport:
    """Audit one proof log; never raises on in-band problems.

    ``OSError`` (unreadable file) is the only exception that escapes —
    the CLI maps it to its own exit code.  Everything else becomes a
    verdict.
    """
    read = read_proof_records(path)

    def refuted(reason: str, line: Optional[int] = None) -> AuditReport:
        return AuditReport(
            verdict=VERDICT_REFUTED,
            reason=reason,
            line=line,
            torn_tail=read.torn_tail,
        )

    if read.malformed_line is not None:
        return refuted("malformed record", read.malformed_line)
    if not read.records:
        return refuted("empty proof log")

    counts: Dict[str, int] = {}
    for _, record in read.records:
        kind = record.get("kind")
        key = kind if isinstance(kind, str) and kind in RECORD_KINDS else "?"
        counts[key] = counts.get(key, 0) + 1

    for lineno, record in read.records:
        if not record_checksum_ok(record):
            return refuted("record checksum mismatch", lineno)

    header_line, header = read.records[0]
    if header.get("kind") != KIND_HEADER:
        return refuted("first record is not a header", header_line)
    if header.get("schema") not in PROOF_SCHEMAS:
        return refuted(
            f"unknown proof schema {header.get('schema')!r}", header_line
        )
    try:
        form = ExactForm.from_header(header["form"])
    except (ProofCheckError, KeyError, TypeError, ValueError) as exc:
        return refuted(f"malformed embedded form: {exc}", header_line)
    recorded_fp = header.get("fingerprint")
    try:
        actual_fp = form.fingerprint()
    except ProofCheckError as exc:
        return refuted(str(exc), header_line)
    if recorded_fp != actual_fp:
        return refuted("fingerprint mismatch", header_line)
    if expected_fingerprint is not None and recorded_fp != expected_fingerprint:
        return refuted(
            "fingerprint does not match the expected formulation",
            header_line,
        )

    # Cut block (schema v2): re-prove each cut against the form built
    # so far, then extend the working form with it — every later
    # certificate (duals over cut rows included) is checked against
    # the extended system.  The fingerprint above covered the *base*
    # form, so tightening never masquerades as the original model.
    raw_ncuts = header.get("cuts", 0)
    if (
        isinstance(raw_ncuts, bool)
        or not isinstance(raw_ncuts, int)
        or raw_ncuts < 0
    ):
        return refuted("malformed header cut count", header_line)
    ncuts = raw_ncuts
    if ncuts > len(read.records) - 1:
        return refuted("cut block truncated", header_line)
    for i in range(ncuts):
        cut_line, cut_record = read.records[1 + i]
        if cut_record.get("kind") != KIND_CUT:
            return refuted(
                "cut block interrupted by a non-cut record", cut_line
            )
        if cut_record.get("index") != i:
            return refuted("cut records out of order", cut_line)
        cut_reason = verify_cut_record(form, cut_record)
        if cut_reason is not None:
            return refuted(f"invalid cut: {cut_reason}", cut_line)
        append_cut_row(form, cut_record)

    replayer = _Replayer(form, header)

    # Collection pass: certify every claimed integer point globally
    # (bounds, integrality, residuals, exact objective), and derive
    # the final incumbent z* that every prune is checked against.
    z_star: Optional[Fraction] = None
    for lineno, record in read.records[1:]:
        if record.get("kind") not in (KIND_INTEGRAL, KIND_INCUMBENT):
            continue
        try:
            x = parse_point(record.get("x"), form.n)
            reason = verify_point(form, x, replayer.int_tol)
            if reason is not None:
                return refuted(f"claimed point infeasible: {reason}", lineno)
            exact_obj = exact_objective(form, x)
            claimed = _fr(record["objective"])
        except ProofCheckError as exc:
            return refuted(str(exc), lineno)
        except (KeyError, TypeError, ValueError) as exc:
            return refuted(f"malformed integral record: {exc}", lineno)
        if abs(exact_obj - claimed) > FEAS_TOL * (1 + abs(exact_obj)):
            return refuted(
                "recorded objective disagrees with the claimed point", lineno
            )
        if z_star is None or exact_obj < z_star:
            z_star = exact_obj
    replayer.set_incumbent(z_star)

    for lineno, record in read.records[1 + ncuts:]:
        try:
            replayer.handle(record)
        except ProofCheckError as exc:
            return refuted(exc.reason, lineno)
        except (KeyError, TypeError, ValueError, IndexError, OverflowError) as exc:
            return refuted(
                f"malformed record ({type(exc).__name__}: {exc})", lineno
            )

    result = replayer.pending_result
    if result is None:
        return refuted("no result record (log ends mid-run)")
    if replayer.open:
        node = sorted(replayer.open)[0]
        return refuted(f"unclosed subtree {node!r}")

    claimed_status = result.get("status")
    status = claimed_status if isinstance(claimed_status, str) else None
    raw_obj = result.get("objective")
    claimed_obj: Optional[float] = (
        float(raw_obj) if isinstance(raw_obj, (int, float)) else None
    )

    report = AuditReport(
        verdict=VERDICT_CERTIFIED,
        claimed_status=status,
        claimed_objective=claimed_obj,
        certified_objective=None if z_star is None else float(z_star),
        forfeits=replayer.forfeits,
        counts=counts,
        torn_tail=read.torn_tail,
    )

    if status == "infeasible":
        if z_star is not None:
            report.verdict = VERDICT_REFUTED
            report.reason = (
                "claimed infeasible but the log certifies a feasible point"
            )
            return report
    elif claimed_obj is not None:
        if z_star is None:
            report.verdict = VERDICT_REFUTED
            report.reason = "no certified incumbent backs the claimed result"
            return report
        if abs(z_star - _fr(claimed_obj)) > FEAS_TOL * (1 + abs(z_star)):
            report.verdict = VERDICT_REFUTED
            report.reason = (
                "claimed objective does not match the certified incumbent"
            )
            return report
    elif status == "optimal":
        # A limit stop may honestly claim nothing, but an optimality
        # claim without an objective is not a claim at all.
        report.verdict = VERDICT_REFUTED
        report.reason = "claimed optimal without an objective"
        return report

    if replayer.forfeits:
        report.verdict = VERDICT_FORFEITURES
    return report
