"""Compilation of a :class:`~repro.ilp.model.Model` to matrix form.

Both solver backends consume the same :class:`StandardForm`:

* objective vector ``c`` (minimization),
* inequality system ``A_ub x <= b_ub`` (GE rows are negated),
* equality system ``A_eq x == b_eq``,
* variable bounds and integrality mask.

The matrices are SciPy CSR sparse — the paper's models are extremely
sparse (each constraint touches a handful of the hundreds of
variables), and branch-and-bound re-solves the same matrices with only
bound changes, so compiling once and reusing matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.ilp.model import Model, Sense


@dataclass(frozen=True)
class StandardForm:
    """Matrix form of a model, shared by all backends."""

    c: "np.ndarray"
    a_ub: "sparse.csr_matrix"
    b_ub: "np.ndarray"
    a_eq: "sparse.csr_matrix"
    b_eq: "np.ndarray"
    lb: "np.ndarray"
    ub: "np.ndarray"
    integrality: "np.ndarray"  # 1.0 where integer, 0.0 where continuous

    @property
    def num_vars(self) -> int:
        """Number of variables (columns)."""
        return int(self.c.shape[0])

    def bounds_pairs(
        self,
        lb_override: "Optional[np.ndarray]" = None,
        ub_override: "Optional[np.ndarray]" = None,
    ) -> "np.ndarray":
        """Per-variable ``(lb, ub)`` pairs with optional overrides.

        Returns a ``(n, 2)`` ndarray — ``linprog`` accepts it directly
        as its ``bounds`` argument — backed by a buffer cached on the
        form and *reused across calls*, so branch-and-bound nodes do
        not rebuild a Python list of tuples per LP solve.  Callers must
        treat the result as consumed-on-call (the next call overwrites
        it); snapshot with ``.copy()`` if it must outlive that.
        """
        lb = self.lb if lb_override is None else lb_override
        ub = self.ub if ub_override is None else ub_override
        buf = self.__dict__.get("_bounds_buf")
        if buf is None or buf.shape[0] != self.num_vars:
            buf = np.empty((self.num_vars, 2), dtype=float)
            # Frozen dataclass: stash the cache without tripping the
            # generated __setattr__ guard.
            object.__setattr__(self, "_bounds_buf", buf)
        buf[:, 0] = lb
        buf[:, 1] = ub
        return buf


def compile_standard_form(model: Model) -> StandardForm:
    """Compile ``model`` into a :class:`StandardForm`.

    GE constraints are negated into LE rows; EQ constraints go to the
    equality system.  Raises :class:`ModelError` on NaN coefficients.
    """
    n = model.num_vars
    c = np.zeros(n)
    for idx, coef in model.objective.coeffs.items():
        _check_finite(coef, "objective coefficient")
        c[idx] = coef

    ub_rows: "List[Tuple[List[int], List[float], float]]" = []
    eq_rows: "List[Tuple[List[int], List[float], float]]" = []
    for constraint in model.constraints:
        indices: "List[int]" = []
        values: "List[float]" = []
        for idx, coef in constraint.expr.coeffs.items():
            _check_finite(coef, f"coefficient in {constraint.name or 'constraint'}")
            if coef != 0.0:
                indices.append(idx)
                values.append(coef)
        rhs = float(constraint.rhs)
        _check_finite(rhs, f"rhs of {constraint.name or 'constraint'}")
        if constraint.sense is Sense.LE:
            ub_rows.append((indices, values, rhs))
        elif constraint.sense is Sense.GE:
            ub_rows.append((indices, [-v for v in values], -rhs))
        else:
            eq_rows.append((indices, values, rhs))

    a_ub, b_ub = _build_csr(ub_rows, n)
    a_eq, b_eq = _build_csr(eq_rows, n)

    lb = np.array([v.lb for v in model.variables], dtype=float)
    ub = np.array([v.ub for v in model.variables], dtype=float)
    integrality = np.array(
        [1.0 if v.is_integer else 0.0 for v in model.variables], dtype=float
    )
    return StandardForm(
        c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
        lb=lb, ub=ub, integrality=integrality,
    )


def _build_csr(
    rows: "List[Tuple[List[int], List[float], float]]", n: int
) -> "Tuple[sparse.csr_matrix, np.ndarray]":
    """Assemble CSR matrix + rhs vector from row triples."""
    if not rows:
        return sparse.csr_matrix((0, n)), np.zeros(0)
    data: "List[float]" = []
    col_indices: "List[int]" = []
    indptr: "List[int]" = [0]
    rhs: "List[float]" = []
    for indices, values, b in rows:
        data.extend(values)
        col_indices.extend(indices)
        indptr.append(len(data))
        rhs.append(b)
    matrix = sparse.csr_matrix(
        (np.array(data), np.array(col_indices, dtype=np.int32), np.array(indptr)),
        shape=(len(rows), n),
    )
    return matrix, np.array(rhs)


def _check_finite(value: float, what: str) -> None:
    if value != value or value in (float("inf"), float("-inf")):
        raise ModelError(f"{what} is not finite: {value}")
