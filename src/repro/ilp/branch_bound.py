"""Branch-and-bound over LP relaxations with pluggable branching rules.

This mirrors the solution machinery of the paper's Section 8: depth-
first search; at each node the LP relaxation is solved, a fractional
0-1 variable is chosen by the configured
:class:`~repro.ilp.branching.BranchingRule`, and the preferred branch
(by default the one setting the variable to 1) is explored first.  The
first integer-feasible solution found becomes the incumbent; because no
variable is ever *forced* (both branches stay in the tree), the final
answer is globally optimal — exactly the paper's argument for why its
guidance heuristic preserves optimality, unlike Gebotys' critical-path
pre-assignment.

Bounding uses the fact (true of the paper's objective, eq. 14, whose
coefficients are integer bandwidths and which evaluates integrally at
every integer-feasible point) that objectives may be integral: set
``objective_is_integral`` in the config and nodes whose LP bound cannot
beat the incumbent by at least 1 are pruned.

Two optional accelerations beyond what ``lp_solve`` offered in 1998
(both default-off so the paper's raw search behaviour remains
measurable; the production :class:`~repro.core.partitioner.TemporalPartitioner`
turns them on):

* **SOS1 propagation** (``propagate_sos1``) — when an up-branch sets a
  variable of a registered exactly-one group (a task's ``y[t, *]``
  row) to 1, its group peers' upper bounds drop to 0 in that child.
* **Leaf sub-solve** (``leaf_subsolve``) — the formulation's objective
  is a function of the group-0 (``y``) variables alone, so once every
  group-0 variable is *bound-fixed* the node is a pure
  scheduling-feasibility problem; it is decided exactly with one
  HiGHS MILP call on the fixed-bounds model instead of by further
  in-tree branching.  Nodes whose LP comes back group-0-integral but
  not bound-fixed are driven to fixation by branching on an unfixed
  group-0 variable (a valid space partition even at integral LP
  values).

Telemetry and deadline robustness
---------------------------------
Every run produces a structured :class:`~repro.ilp.solution.SolveStats`
record: node outcomes bucketed by cause (branched / pruned-by-bound /
pruned-infeasible / integral / leaf-solved), LP calls and cumulative LP
time, SOS1-propagation and leaf-subsolve hit counts, and the incumbent
improvement event log ``(wall_time, objective, bound)``.  Progress
callbacks (``on_node``, ``on_incumbent``) expose the same events live.

Deadline expiry is a first-class outcome, not an error path.  Each open
node carries the LP bound it inherited from its parent, so at any
moment the minimum over the open set is a *proven* global lower bound.
On ``time_limit_s`` exhaustion the solver returns the incumbent with
status FEASIBLE plus that bound and the relative gap; if the deadline
fires before any incumbent exists, a bounded **rescue dive**
(``rescue_on_deadline``) keeps popping preferred nodes — limited by
``rescue_node_budget``, not by the clock — until a first feasible
solution is in hand, so even a ``time_limit_s=0`` run on a feasible
model yields a usable answer.  Only a rescue that also exhausts its
node budget empty-handed returns a bare TIMEOUT.

Resilience
----------
LP backend faults are survivable outcomes too (see
:mod:`repro.ilp.resilience`).  A backend call that raises
:class:`~repro.errors.SolverError` does not kill the search: the node
is **blind-branched** — split on an unfixed integer variable without a
bound, inheriting the parent's proven bound — so no subtree is lost
and no wrong bound ever prunes.  A fully-fixed node whose LP fails is
decided by the exact leaf sub-solve; only if that also fails is the
node *dropped*, which forfeits the optimality proof (the final status
honestly downgrades from OPTIMAL to FEASIBLE, or to ERROR when no
incumbent exists).  ``lp_failure_limit`` bounds how much failure the
search tolerates before aborting with stop reason ``lp_failure_limit``
— the partitioner's cue to degrade to a heuristic baseline.

Checkpoint/resume: with ``checkpoint_path`` set, the open-node
frontier, incumbent, and counters are serialized atomically every
``checkpoint_every`` nodes (and on every limit stop); :meth:`resume`
restores that state and continues the identical search — the paper's
">7200 s" runs restart where they died instead of from scratch.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.errors import SolverError
from repro.ilp.branching import BranchDecision, BranchingRule, PaperBranching
from repro.ilp.model import Model
from repro.ilp.scipy_backend import solve_lp_scipy
from repro.ilp.solution import (
    IncumbentEvent,
    LPResult,
    MilpResult,
    NodeEvent,
    SolveStats,
    SolveStatus,
    plain_values,
    relative_gap,
)
from repro.ilp.standard_form import StandardForm, compile_standard_form


@dataclass
class BranchAndBoundConfig:
    """Tuning knobs of the search.

    Parameters
    ----------
    time_limit_s:
        Wall-clock limit; on expiry the best incumbent (if any) is
        returned with status FEASIBLE plus the proven bound and gap.
        The paper's ">7200" rows are exactly this outcome.
    node_limit:
        Maximum number of explored nodes (safety valve for the
        deliberately-bad baselines).
    int_tol:
        How close to an integer an LP value must be to count as
        integral.
    objective_is_integral:
        Enables the stronger "must improve by >= 1" pruning threshold.
    lp_backend:
        LP relaxation solver; default SciPy HiGHS.  The built-in
        simplex (:func:`repro.ilp.simplex.solve_lp_simplex`) is drop-in
        compatible.
    propagate_sos1:
        Fix SOS1 peers to 0 on up-branches (needs groups registered on
        the model; harmless otherwise).
    leaf_subsolve:
        Decide group-0-fixed leaves with one exact HiGHS MILP call (see
        module docstring).  Requires group-0 variables to determine the
        objective for the incumbent to be optimal for that leaf; the
        temporal-partitioning formulation satisfies this by
        construction.
    subsolve_time_limit_s:
        Time limit per leaf sub-solve call.
    node_prober:
        Optional ``f(lb, ub) -> bool`` called on every node before its
        LP; returning True *proves* the node infeasible and prunes it.
        The temporal-partitioning flow plugs in the slot-counting
        prober (:func:`repro.core.probe.make_slot_prober`).
    leaf_solver:
        Optional ``f(lb, ub, budget_s) -> (kind, payload)`` deciding a
        group-0-fixed leaf exactly with a problem-specific compact
        model (:func:`repro.core.leafsolve.make_leaf_solver`); when
        absent, leaves are decided by a HiGHS MILP call on the full
        model with the node's bounds.
    on_node:
        Optional callback receiving a
        :class:`~repro.ilp.solution.NodeEvent` after every
        ``callback_every``-th explored node (live progress traces).
    on_incumbent:
        Optional callback receiving each
        :class:`~repro.ilp.solution.IncumbentEvent` as the incumbent
        improves.
    callback_every:
        Node-callback decimation factor (1 = every node).
    rescue_on_deadline:
        When the deadline fires before any incumbent exists, keep
        diving (preferred branches first) for up to
        ``rescue_node_budget`` more nodes to secure a first feasible
        solution.  Node-bounded, not time-bounded — the point is a
        usable answer, not punctuality to the microsecond.
    rescue_node_budget:
        Maximum extra nodes the rescue dive may explore.
    presolve:
        Run the static presolve pass (:mod:`repro.ilp.analysis`) over
        the model before compiling the standard form: bound
        propagation, variable fixing, coefficient tightening and
        redundant-row removal, all in the *original* variable space
        (no column is eliminated), so probers, leaf solvers and
        branching metadata keep their indices.  A presolve
        infeasibility certificate short-circuits :meth:`solve` to an
        INFEASIBLE result without a single LP call; the reduction
        counters land in ``SolveStats.presolve``.
    presolve_options:
        Override the :class:`~repro.ilp.analysis.PresolveOptions`;
        must keep ``eliminate=False`` (enforced).
    lp_failure_limit:
        Total LP backend failures (calls raising
        :class:`~repro.errors.SolverError`) tolerated before the
        search aborts with stop reason ``lp_failure_limit`` — the
        graceful-degradation cue.  Failures below the limit are
        survived by blind branching (see module docstring).
    checkpoint_path:
        When set, the search state is serialized (atomically) to this
        path every ``checkpoint_every`` explored nodes and on every
        limit stop, so a killed process can :meth:`~BranchAndBound.resume`.
    checkpoint_every:
        Node interval between periodic checkpoint saves.
    reduced_cost_fixing:
        Permanently tighten integer-variable bounds from the *root* LP's
        reduced costs each time the incumbent improves: a variable
        nonbasic at a root bound whose reduced cost proves any deviation
        cannot beat the incumbent is fixed at that bound, and every
        node explored afterwards is clipped to the tightened box.  This
        never cuts off the optimal *objective* (only provably-not-better
        or tied alternates), so OPTIMAL statuses and objectives are
        unchanged.  Requires the LP backend to attach
        ``LPResult.reduced_costs``; silently inert otherwise.  Fixings
        are counted in ``SolveStats.vars_fixed_reduced_cost``.
    cuts:
        Run the root cutting-plane loop (:mod:`repro.ilp.cuts`) at
        construction time: cover, clique and implied-bound cuts are
        separated against the root LP's fractional point in rounds
        until tail-off, each exact-validated before acceptance, and
        the *extended* standard form is what the whole search (warm
        starts, reduced-cost fixing, node cache, checkpoints, leaf
        sub-solves, proof logs) then operates on.  The loop's
        telemetry lands in ``SolveStats.cuts``.
    cut_rounds / cut_max_per_round / cut_min_violation / cut_tailoff:
        Cut-loop knobs: maximum separation rounds, accepted cuts per
        round, minimum violation for a candidate to be considered, and
        the relative root-objective improvement below which the loop
        stops early.
    heuristics:
        Enable the in-tree primal heuristics
        (:mod:`repro.ilp.heuristics`): LP-guided diving at the root
        and every ``dive_every`` nodes, and 1-opt incumbent polishing
        whenever the incumbent improves.  Heuristic incumbents feed
        the ordinary incumbent machinery (so bound pruning and
        reduced-cost fixing fire earlier) and are audited before
        adoption; counters land in ``SolveStats.heuristics``.
    dive_every:
        Node interval between dives (the root always dives).
    dive_max_lp / polish_max_lp:
        LP-call budgets per dive / per polishing pass.
    incumbent_auditor:
        Optional ``f(values: Dict[int, float]) -> bool`` run on every
        *heuristic* incumbent before adoption (the partitioner plugs
        in decode + ``verify_design``); a rejected point is discarded
        and counted, never adopted.
    proof_path:
        When set, every tree event is appended (with its certificate)
        to this ``repro.bnb_proof/v1`` JSONL artifact, independently
        re-verifiable with ``repro audit`` (see
        :mod:`repro.ilp.certify`).  Proof mode disables the
        non-certifiable accelerations on this solver (node prober,
        leaf sub-solve) — their closures carry no LP dual evidence —
        and only applies SOS1 propagations and reduced-cost fixes that
        pre-validate in exact arithmetic.
    proof_sink:
        Pre-built :class:`~repro.ilp.certify.proof.ProofSink` to emit
        into instead of opening ``proof_path`` (the parallel worker /
        coordinator plumbing); mutually exclusive with ``proof_path``.
    """

    time_limit_s: Optional[float] = None
    node_limit: Optional[int] = None
    int_tol: float = 1e-6
    objective_is_integral: bool = False
    lp_backend: Callable[..., LPResult] = solve_lp_scipy
    propagate_sos1: bool = False
    leaf_subsolve: bool = False
    subsolve_time_limit_s: float = 30.0
    node_prober: "Optional[Callable]" = None
    leaf_solver: "Optional[Callable]" = None
    on_node: "Optional[Callable[[NodeEvent], None]]" = None
    on_incumbent: "Optional[Callable[[IncumbentEvent], None]]" = None
    callback_every: int = 1
    rescue_on_deadline: bool = True
    rescue_node_budget: int = 64
    presolve: bool = False
    presolve_options: "Optional[object]" = None
    lp_failure_limit: int = 64
    checkpoint_path: "Optional[str]" = None
    checkpoint_every: int = 256
    reduced_cost_fixing: bool = False
    cuts: bool = False
    cut_rounds: int = 8
    cut_max_per_round: int = 64
    cut_min_violation: float = 1e-4
    cut_tailoff: float = 1e-5
    heuristics: bool = False
    dive_every: int = 512
    dive_max_lp: int = 64
    polish_max_lp: int = 64
    incumbent_auditor: "Optional[Callable[[Dict[int, float]], bool]]" = None
    proof_path: "Optional[str]" = None
    proof_sink: "Optional[object]" = None


#: Zeroed ``SolveStats.heuristics`` telemetry block.
_HEUR_ZERO: "Dict[str, int]" = {
    "dives": 0,
    "dive_lp_solves": 0,
    "dive_leaf_solves": 0,
    "dive_incumbents": 0,
    "polish_calls": 0,
    "polish_lp_solves": 0,
    "polish_leaf_solves": 0,
    "polish_incumbents": 0,
    "audit_rejects": 0,
}


@dataclass
class _Node:
    """One open node: bound overrides plus bookkeeping.

    ``bound`` is the LP objective of the parent (a valid lower bound on
    every solution in this subtree); the root starts at ``-inf`` until
    its own LP is solved.
    """

    lb: "np.ndarray"
    ub: "np.ndarray"
    depth: int
    bound: float = -math.inf
    pid: "Optional[str]" = None  # proof-log node id (proof mode only)
    #: An ancestor already ran the leaf MILP sub-solve as a primal
    #: heuristic (proof mode): re-running it deeper in the same subtree
    #: cannot improve the incumbent, so it is skipped.
    subsolved: bool = False


class BranchAndBound:
    """Branch-and-bound solver for a 0-1 mixed-integer linear model.

    Parameters
    ----------
    model:
        The model to solve (minimization).
    rule:
        Branching rule; defaults to the paper's heuristic.
    config:
        Search configuration.
    """

    def __init__(
        self,
        model: Model,
        rule: "Optional[BranchingRule]" = None,
        config: "Optional[BranchAndBoundConfig]" = None,
    ) -> None:
        self.original_model = model
        self.rule = rule if rule is not None else PaperBranching()
        self.config = config if config is not None else BranchAndBoundConfig()
        self._presolve_certificate = None
        self._presolve_stats: "Optional[Dict[str, object]]" = None
        if self.config.presolve:
            model = self._run_presolve(model)
        self.model = model
        self.form: StandardForm = compile_standard_form(model)
        # Root cutting planes (repro.ilp.cuts): the *base* compiled
        # form is kept for proof headers (its fingerprint binds the
        # artifact to the formulation) while everything the search
        # touches — warm starts, rc fixing, checkpoints, leaf
        # sub-solves — uses the extended form.  Re-running the loop in
        # __init__ is deterministic, so a resumed solver reproduces
        # the same extension (and the same checkpoint fingerprint).
        self.base_form: StandardForm = self.form
        self._cut_rows: "List[object]" = []
        self._cut_stats: "Optional[Dict[str, object]]" = None
        if self.config.cuts:
            from repro.ilp.cuts import run_root_cut_loop

            self.form, self._cut_rows, self._cut_stats = run_root_cut_loop(
                self.base_form,
                self.config.lp_backend,
                rounds=self.config.cut_rounds,
                max_per_round=self.config.cut_max_per_round,
                min_violation=self.config.cut_min_violation,
                tailoff=self.config.cut_tailoff,
            )
        self._int_indices = np.array(model.integer_indices(), dtype=int)
        self._group0: "List[int]" = [
            v.index
            for v in model.variables
            if v.is_integer and v.branch_group == 0
        ]
        self._group0_set: "Set[int]" = set(self._group0)
        self._sos1_of: "Dict[int, List[int]]" = {}
        for group in model.sos1_groups:
            for idx in group:
                self._sos1_of.setdefault(idx, []).extend(
                    peer for peer in group if peer != idx
                )
        # Per-run state, (re)initialized by solve().
        self._start = 0.0
        self._started = False
        self._stats = SolveStats()
        self._stack: "List[_Node]" = []
        self._incumbent_values: "Optional[Dict[int, float]]" = None
        self._incumbent_obj = math.inf
        # Primal-heuristic state (repro.ilp.heuristics).
        self._heur: "Dict[str, int]" = dict(_HEUR_ZERO)
        self._in_polish = False
        # Resilience state.
        self._exactness_lost = False
        self._lp_failure_abort = False
        self._checkpoint_saves = 0
        self._resumed = False
        self._resume_payload: "Optional[Dict[str, object]]" = None
        self._elapsed_base = 0.0
        # Reduced-cost fixing state: root LP snapshot + the globally
        # tightened bound box applied to every later node.
        self._root_lp: "Optional[tuple]" = None
        self._rc_lb: "Optional[np.ndarray]" = None
        self._rc_ub: "Optional[np.ndarray]" = None
        # Proof logging state (see repro.ilp.certify).
        self._proof: "Optional[object]" = None
        self._owns_proof = False
        self._pid_prefix = "m"
        self._node_seq = 0

    # ------------------------------------------------------------------

    def _run_presolve(self, model: Model) -> Model:
        """Reduce ``model`` in place-compatible (non-eliminating) mode.

        Returns the reduced model to search, or the original when the
        pass proved infeasibility (the certificate is kept and
        :meth:`solve` returns immediately).
        """
        from repro.ilp.analysis.presolve import PresolveOptions, presolve

        opts = self.config.presolve_options
        if opts is None:
            opts = PresolveOptions(eliminate=False)
        if opts.eliminate:
            raise SolverError(
                "BranchAndBound presolve must keep the variable space; "
                "use PresolveOptions(eliminate=False)"
            )
        result = presolve(model, opts)
        self._presolve_stats = result.stats.as_dict()
        if result.certificate is not None:
            self._presolve_certificate = result.certificate
            return model
        assert result.model is not None
        return result.model

    @property
    def presolve_certificate(self):
        """Infeasibility certificate produced by presolve, if any."""
        return self._presolve_certificate

    def solve(self) -> MilpResult:
        """Run the search and return the result.

        Status semantics:

        * OPTIMAL — incumbent proved optimal (tree exhausted);
        * INFEASIBLE — tree exhausted without any integer solution;
        * FEASIBLE — a limit expired but an incumbent (with a proven
          bound and gap) is attached;
        * TIMEOUT / NODE_LIMIT — the limit expired with no incumbent
          (for deadlines: even after the rescue dive, if enabled).
        """
        short_circuit = self._prepare_run()
        if short_circuit is not None:
            return short_circuit

        limit_status: "Optional[SolveStatus]" = None
        while self._stack:
            if self._lp_failure_abort:
                limit_status = SolveStatus.ERROR
                break
            if self._out_of_time():
                limit_status = SolveStatus.TIMEOUT
                break
            if (
                self.config.node_limit is not None
                and self._stats.nodes_explored >= self.config.node_limit
            ):
                limit_status = SolveStatus.NODE_LIMIT
                break
            self._process_node(self._stack.pop())
            self._maybe_checkpoint()

        return self._finish_run(limit_status)

    def _finish_run(
        self, limit_status: "Optional[SolveStatus]"
    ) -> MilpResult:
        """Endgame shared by :meth:`solve` and the parallel coordinator:
        the no-incumbent rescue dive, final-checkpoint persistence (or
        stale-checkpoint removal), and result assembly."""
        if (
            limit_status is SolveStatus.TIMEOUT
            and self._incumbent_values is None
            and self.config.rescue_on_deadline
        ):
            self._rescue_dive()
            if not self._stack:
                # The rescue finished the whole tree: the deadline is
                # moot and the normal exhaustion semantics apply.
                limit_status = None

        if limit_status is not None and self.config.checkpoint_path:
            # The stop a checkpoint exists for: persist the final
            # frontier so a restart continues instead of redoing.
            self.save_checkpoint(self.config.checkpoint_path)
        elif self.config.checkpoint_path:
            # Search ran to completion: a leftover periodic checkpoint
            # would only make the next run resume a finished search.
            try:
                os.remove(self.config.checkpoint_path)
            except OSError:
                pass

        result = self._finish(limit_status)
        if self._proof is not None:
            # Nodes still open at a limit stop are honestly forfeited
            # (after the checkpoint snapshot above, so a resumed run's
            # frontier re-covers them and the audit drops the forfeit).
            for open_node in self._stack:
                self._proof.emit_forfeit(
                    self._node_pid(open_node), "open_at_stop",
                    open_node.lb, open_node.ub,
                )
            self._proof.emit_result(
                result.status.value,
                result.objective,
                result.bound,
                self._exactness_lost,
            )
            self._stats.proof = {
                "path": self.config.proof_path,
                "fingerprint": getattr(self._proof, "fingerprint", None),
                "records": dict(self._proof.counts),
                "forfeits": int(self._proof.forfeit_count),
            }
            self._close_proof()
        return result

    def _prepare_run(self) -> "Optional[MilpResult]":
        """(Re)initialize per-run state for a fresh search.

        Shared by :meth:`solve` and the parallel coordinator
        (:mod:`repro.ilp.parallel`), so both have identical rampup
        semantics: clock started, counters zeroed, the root node on the
        stack, any pending resume payload consumed.  Returns a
        short-circuit :class:`MilpResult` when presolve already proved
        infeasibility (no LP is ever solved), else ``None``.
        """
        self._start = time.monotonic()
        self._started = True
        self._stats = SolveStats()
        self._stats.presolve = self._presolve_stats
        self._incumbent_values = None
        self._incumbent_obj = math.inf
        self._exactness_lost = False
        self._lp_failure_abort = False
        self._checkpoint_saves = 0
        self._elapsed_base = 0.0
        self._root_lp = None
        self._rc_lb = None
        self._rc_ub = None
        self._heur = dict(_HEUR_ZERO)
        self._in_polish = False
        self._setup_proof()
        if self._presolve_certificate is not None:
            # Presolve proved infeasibility; no LP is ever solved.
            self._stats.stop_reason = "presolve_infeasible"
            self._stats.wall_time_s = time.monotonic() - self._start
            if self._proof is not None:
                # Presolve's reasoning is not replayed by the checker:
                # the root is honestly forfeited, never claimed.
                self._proof.emit_forfeit(
                    "root", "presolve_infeasible", self.form.lb, self.form.ub
                )
                self._proof.emit_result("infeasible", None, None, False)
                self._stats.proof = {
                    "path": self.config.proof_path,
                    "fingerprint": getattr(self._proof, "fingerprint", None),
                    "records": dict(self._proof.counts),
                    "forfeits": int(self._proof.forfeit_count),
                }
                self._close_proof()
            return MilpResult(status=SolveStatus.INFEASIBLE, stats=self._stats)
        self._stack = [
            _Node(self.form.lb.copy(), self.form.ub.copy(), depth=0, pid="root")
        ]
        if self._resume_payload is not None:
            self._restore_from_checkpoint(self._resume_payload)
            self._resume_payload = None
        return None

    # ------------------------------------------------------------------
    # proof logging plumbing (see repro.ilp.certify)

    def _setup_proof(self) -> None:
        """Attach the proof sink for this run, if any."""
        self._node_seq = 0
        self._pid_prefix = "m"
        sink = self.config.proof_sink
        if sink is not None:
            self._proof = sink
            self._owns_proof = False
            return
        if not self.config.proof_path:
            self._proof = None
            self._owns_proof = False
            return
        from repro.ilp.certify.proof import ProofWriter

        self._proof = ProofWriter(
            self.config.proof_path,
            self.form,
            objective_is_integral=self.config.objective_is_integral,
            int_tol=self.config.int_tol,
            resume=self._resume_payload is not None,
            base_form=self.base_form if self._cut_rows else None,
            cut_records=self.cut_proof_records(),
        )
        self._owns_proof = True

    def cut_proof_records(self) -> "List[Dict[str, object]]":
        """The (unsealed) ``cut`` proof records of this solver's cuts."""
        return [
            row.proof_record(i) for i, row in enumerate(self._cut_rows)
        ]

    def _close_proof(self) -> None:
        if self._proof is not None and self._owns_proof:
            self._proof.close()
        self._proof = None

    def _next_pid(self) -> str:
        self._node_seq += 1
        return f"{self._pid_prefix}{self._node_seq}"

    def _node_pid(self, node: "_Node") -> str:
        if node.pid is None:  # pragma: no cover - defensive
            node.pid = self._next_pid()
        return node.pid

    def _values_array(self, values: "Dict[int, float]") -> "np.ndarray":
        arr = np.zeros(self.form.num_vars)
        for idx, val in values.items():
            arr[int(idx)] = float(val)
        return arr

    def _capture_root_proof(self, lp: LPResult) -> bool:
        """Gate root-LP capture (reduced-cost fixing) in proof mode.

        Without a proof sink every capture is allowed.  With one, the
        root's dual vector must exist and certify a finite exact dual
        bound (the justification every later ``rc_fix`` record leans
        on); otherwise fixing stays off for the whole run — sound,
        merely less pruning.
        """
        if self._proof is None:
            return True
        if lp.dual_ub is None or lp.dual_eq is None:
            return False
        return bool(self._proof.emit_root(lp.dual_ub, lp.dual_eq))

    def _emit_infeasible_proof(self, node: "_Node") -> None:
        """Certify an LP-infeasible prune.

        An exactly-empty box is self-evident; otherwise a Farkas
        certificate is extracted with one phase-1 elastic LP (the
        subtree is forfeited when none can be found).
        """
        pid = self._node_pid(node)
        if bool(np.any(node.lb > node.ub)):
            self._proof.emit_prune_infeasible(pid, node.lb, node.ub)
            return
        from repro.ilp.certify.certificates import extract_farkas

        cert = extract_farkas(self.form, node.lb, node.ub)
        if cert is None:
            self._proof.emit_prune_infeasible(pid, node.lb, node.ub)
            return
        self._proof.emit_prune_infeasible(
            pid, node.lb, node.ub, y_ub=cert[0], y_eq=cert[1]
        )

    # ------------------------------------------------------------------
    # node processing

    def _process_node(self, node: _Node, rescue: bool = False) -> None:
        """Explore one node: prune, update the incumbent, or branch."""
        stats = self._stats
        stats.nodes_explored += 1
        if rescue:
            stats.rescue_nodes += 1
        stats.max_depth = max(stats.max_depth, node.depth)

        try:
            if self._rc_lb is not None:
                # Clip into the reduced-cost-tightened box.  Bounds only
                # move inward, so checkpointed bound-deltas stay valid;
                # an emptied box means the subtree provably holds
                # nothing better than the incumbent.
                np.maximum(node.lb, self._rc_lb, out=node.lb)
                np.minimum(node.ub, self._rc_ub, out=node.ub)
                if np.any(node.lb > node.ub):
                    stats.nodes_pruned_bound += 1
                    if self._proof is not None:
                        self._proof.emit_prune_infeasible(
                            self._node_pid(node), node.lb, node.ub,
                            reason="rcbox",
                        )
                    return

            # The prober's closures carry no checkable certificate, so
            # proof mode ignores it and lets the LP decide.
            if (
                self._proof is None
                and self.config.node_prober is not None
                and self.config.node_prober(node.lb, node.ub)
            ):
                stats.prober_hits += 1
                stats.nodes_pruned_infeasible += 1
                return

            lp_start = time.monotonic()
            try:
                lp = self.config.lp_backend(self.form, node.lb, node.ub)
            except SolverError as exc:
                stats.lp_solves += 1
                stats.lp_time_s += time.monotonic() - lp_start
                self._lp_failed(node, exc)
                return
            stats.lp_solves += 1
            stats.lp_time_s += time.monotonic() - lp_start

            if lp.status is SolveStatus.INFEASIBLE:
                stats.nodes_pruned_infeasible += 1
                if self._proof is not None:
                    self._emit_infeasible_proof(node)
                return
            if lp.status is SolveStatus.UNBOUNDED:
                raise SolverError(
                    "LP relaxation unbounded; 0-1 models must be box-bounded"
                )
            assert lp.values is not None and lp.objective is not None

            if (
                self.config.reduced_cost_fixing
                and self._root_lp is None
                and node.depth == 0
                and lp.reduced_costs is not None
                and self._capture_root_proof(lp)
            ):
                values_arr = getattr(lp.values, "array", None)
                if values_arr is None:
                    values_arr = np.array(
                        [lp.values[i] for i in range(self.form.num_vars)]
                    )
                self._root_lp = (
                    float(lp.objective),
                    np.asarray(lp.reduced_costs, dtype=float),
                    node.lb.copy(),
                    node.ub.copy(),
                    np.asarray(values_arr, dtype=float),
                )
                # Fires only when an incumbent already exists (resume);
                # a fresh root has no cutoff yet.
                self._apply_reduced_cost_fixing()

            if lp.objective >= self._prune_threshold(self._incumbent_obj):
                stats.nodes_pruned_bound += 1
                if self._proof is not None:
                    self._proof.emit_prune_bound(
                        self._node_pid(node), node.lb, node.ub,
                        lp.dual_ub, lp.dual_eq, self._incumbent_obj,
                    )
                return

            fractional = self._fractional_indices(lp.values)
            if not fractional:
                # Integer feasible: new incumbent (strictly better, else
                # the bound test above would have pruned).
                stats.nodes_integral += 1
                rounded = self._round_integers(lp.values)
                objective = lp.objective
                if self._proof is not None:
                    # The record's objective is the *exact* value of the
                    # rounded point; adopting it as the incumbent keeps
                    # the final claim bit-identical to the certificate.
                    objective = self._proof.emit_integral(
                        self._node_pid(node), node.lb, node.ub,
                        self._values_array(rounded), lp.objective,
                        lp.dual_ub, lp.dual_eq, self._incumbent_obj,
                    )
                self._new_incumbent(objective, rounded)
                return

            if self.config.heuristics and (
                node.depth == 0
                or stats.nodes_explored % max(1, self.config.dive_every) == 0
            ):
                if self._try_dive(node, lp):
                    # The dive's incumbent closed this very node: its
                    # own LP bound now prunes it (certified in proof
                    # mode by the ordinary bound-prune record).
                    return

            decision = self._decide(node, lp.values, fractional)
            if decision is None and self._proof is not None:
                # Proof mode: the MILP sub-solve yields no replayable
                # subtree certificate, so it is demoted to a primal
                # heuristic — run once per subtree, certify any
                # improving point as a global incumbent record, and keep
                # branching inside the logged tree (the new incumbent
                # lets ordinary bound pruning close the subtree).
                if not node.subsolved:
                    node.subsolved = True
                    kind, payload = self._leaf_subsolve(node)
                    improving = False
                    if kind == "optimal":
                        sub_obj, sub_values = payload
                        if sub_obj < self._prune_threshold(
                            self._incumbent_obj
                        ):
                            emitted = self._proof.emit_incumbent(
                                self._values_array(sub_values), sub_obj
                            )
                            if emitted is not None:
                                improving = True
                                self._new_incumbent(emitted, sub_values)
                                if lp.objective >= self._prune_threshold(
                                    self._incumbent_obj
                                ):
                                    # Its own LP bound closes this node.
                                    stats.nodes_pruned_bound += 1
                                    self._proof.emit_prune_bound(
                                        self._node_pid(node),
                                        node.lb, node.ub,
                                        lp.dual_ub, lp.dual_eq,
                                        self._incumbent_obj,
                                    )
                                    return
                    if not improving and kind in ("optimal", "infeasible"):
                        # The sub-solve proved this subtree worthless but
                        # left no replayable certificate.  Defer it to
                        # the bottom of the stack: by the time it comes
                        # back the incumbent found elsewhere usually
                        # bound-prunes it in one certified record,
                        # instead of enumerating an LP-feasible but
                        # integer-infeasible region node by node.
                        self._stack.insert(0, node)
                        return
                decision = self.rule.select(self.model, lp.values, fractional)
            elif decision is None:
                # Leaf: every group-0 variable bound-fixed.
                kind, payload = self._leaf_subsolve(node)
                if kind == "optimal":
                    stats.nodes_leaf_solved += 1
                    sub_obj, sub_values = payload
                    if sub_obj < self._prune_threshold(self._incumbent_obj):
                        self._new_incumbent(sub_obj, sub_values)
                    return
                if kind == "infeasible":
                    stats.nodes_leaf_solved += 1
                    return
                # Sub-solve timed out: stay exact by branching normally.
                decision = self.rule.select(self.model, lp.values, fractional)

            stats.nodes_branched += 1
            self._push_children(node, decision, lp.values, lp.objective)
        finally:
            self._emit_node_event(node)

    def _rescue_dive(self) -> None:
        """Deadline fired empty-handed: dive for a first incumbent.

        Continues the normal depth-first search (preferred branches are
        already on top of the LIFO stack) but bounded by *nodes* rather
        than the already-spent clock, stopping the moment any incumbent
        exists.  Keeps the result contract honest: a feasible model
        with an absurdly small ``time_limit_s`` still yields a usable
        answer plus a finite proven gap.
        """
        budget = self.config.rescue_node_budget
        while (
            self._stack
            and self._incumbent_values is None
            and self._stats.rescue_nodes < budget
            and not self._lp_failure_abort
        ):
            self._process_node(self._stack.pop(), rescue=True)

    # ------------------------------------------------------------------
    # primal heuristics (repro.ilp.heuristics)

    def _adopt_heuristic_incumbent(
        self, objective: float, values: "Dict[int, float]", counter: str
    ) -> bool:
        """Audit, (proof-mode) certify, and adopt a heuristic point.

        The configured auditor sees every heuristic point first; in
        proof mode the point must additionally pass the sink's exact
        feasibility pre-validation (an unverifiable point is never
        written and never adopted).  Returns True when the point became
        the incumbent.
        """
        auditor = self.config.incumbent_auditor
        if auditor is not None and not auditor(values):
            self._heur["audit_rejects"] += 1
            return False
        if self._proof is not None:
            emitted = self._proof.emit_incumbent(
                self._values_array(values), objective
            )
            if emitted is None:
                self._heur["audit_rejects"] += 1
                return False
            objective = emitted
        if objective >= self._prune_threshold(self._incumbent_obj):
            return False
        self._heur[counter] += 1
        self._new_incumbent(objective, values)
        return True

    def _try_dive(self, node: _Node, lp: LPResult) -> bool:
        """LP-guided dive from this node's fractional point.

        Returns True when the dive produced an incumbent whose prune
        threshold now closes this very node (the caller then emits the
        certified bound prune and returns).
        """
        from repro.ilp.heuristics import lp_dive

        dived = lp_dive(self, node, lp)
        if dived is None:
            return False
        obj, values = dived
        if obj >= self._prune_threshold(self._incumbent_obj):
            return False
        if not self._adopt_heuristic_incumbent(
            obj, values, "dive_incumbents"
        ):
            return False
        if lp.objective >= self._prune_threshold(self._incumbent_obj):
            self._stats.nodes_pruned_bound += 1
            if self._proof is not None:
                self._proof.emit_prune_bound(
                    self._node_pid(node), node.lb, node.ub,
                    lp.dual_ub, lp.dual_eq, self._incumbent_obj,
                )
            return True
        return False

    def _maybe_polish(self) -> None:
        """1-opt polish around a fresh incumbent (re-entrancy guarded:
        an adopted polished point triggers :meth:`_new_incumbent` again
        but never a second polish pass from inside the first)."""
        if not self.config.heuristics or self._in_polish:
            return
        if (
            self._root_lp is not None
            and self._prune_threshold(self._incumbent_obj)
            <= self._root_lp[0]
        ):
            return  # no integer point can beat the incumbent at all
        from repro.ilp.heuristics import polish_incumbent

        self._in_polish = True
        try:
            polished = polish_incumbent(self)
            if polished is not None:
                self._adopt_heuristic_incumbent(
                    polished[0], polished[1], "polish_incumbents"
                )
        finally:
            self._in_polish = False

    # ------------------------------------------------------------------
    # resilience: LP failure survival

    def _lp_failed(self, node: _Node, exc: SolverError) -> None:
        """Survive an LP backend failure on one node.

        The node's LP bound is unknowable, but its *subtree* is not
        lost: blind-branch it (split an unfixed integer variable with
        no pruning, children inherit the parent's proven bound).  A
        fully-fixed node is decided by the exact leaf sub-solve; if
        that fails too the node is dropped and the optimality proof is
        forfeited.  Past ``lp_failure_limit`` total failures the search
        aborts — at that point the backend chain is evidently dead and
        further blind branching only multiplies unresolvable nodes.
        """
        stats = self._stats
        stats.lp_failures += 1
        if stats.lp_failures >= self.config.lp_failure_limit:
            self._lp_failure_abort = True
            self._exactness_lost = True
            stats.nodes_dropped += 1
            if self._proof is not None:
                self._proof.emit_forfeit(
                    self._node_pid(node), "dropped", node.lb, node.ub
                )
            return
        self._branch_blind(node)

    def _branch_blind(self, node: _Node) -> None:
        """Branch a node whose LP failed, without a bound.

        Domain-splits the first unfixed integer variable (in branching
        priority order); both children stay in the tree with the
        parent's inherited bound, so exactness is preserved — only
        pruning power is lost on this node.
        """
        stats = self._stats
        unfixed = [
            int(idx) for idx in self._int_indices
            if node.lb[int(idx)] < node.ub[int(idx)]
        ]
        if not unfixed:
            try:
                kind, payload = self._leaf_subsolve(node)
            except SolverError:
                kind, payload = "failed", None
            if kind == "optimal":
                stats.nodes_leaf_solved += 1
                sub_obj, sub_values = payload
                if sub_obj < self._prune_threshold(self._incumbent_obj):
                    if self._proof is not None:
                        # MILP sub-solve: the point is checkable, the
                        # optimality of the subtree is not (no duals) —
                        # recorded without a certificate, which the
                        # audit counts as a forfeited subtree.
                        sub_obj = self._proof.emit_integral(
                            self._node_pid(node), node.lb, node.ub,
                            self._values_array(sub_values), sub_obj,
                            None, None, self._incumbent_obj,
                        )
                    self._new_incumbent(sub_obj, sub_values)
                elif self._proof is not None:
                    self._proof.emit_forfeit(
                        self._node_pid(node), "uncertified_leaf",
                        node.lb, node.ub,
                    )
                return
            if kind == "infeasible":
                stats.nodes_leaf_solved += 1
                if self._proof is not None:
                    self._proof.emit_forfeit(
                        self._node_pid(node), "uncertified_leaf",
                        node.lb, node.ub,
                    )
                return
            # Exact decision unavailable: drop the node, forfeiting
            # the optimality proof (never a wrong answer, an honest
            # downgrade from OPTIMAL to FEASIBLE/ERROR).
            stats.nodes_dropped += 1
            self._exactness_lost = True
            if self._proof is not None:
                self._proof.emit_forfeit(
                    self._node_pid(node), "dropped", node.lb, node.ub
                )
            return
        pick = min(
            unfixed,
            key=lambda idx: (self.model.variables[idx].branch_key, idx),
        )
        mid = math.floor((node.lb[pick] + node.ub[pick]) / 2.0)
        down = _Node(node.lb.copy(), node.ub.copy(), node.depth + 1,
                     bound=node.bound, subsolved=node.subsolved)
        up = _Node(node.lb.copy(), node.ub.copy(), node.depth + 1,
                   bound=node.bound, subsolved=node.subsolved)
        down.ub[pick] = mid
        up.lb[pick] = mid + 1
        stats.nodes_branched += 1
        stats.blind_branches += 1
        if self._proof is not None:
            down.pid = self._next_pid()
            up.pid = self._next_pid()
            self._proof.emit_branch(
                self._node_pid(node), node.lb, node.ub, pick,
                [(down.pid, down.lb, down.ub), (up.pid, up.lb, up.ub)],
                [],
            )
        self._stack.append(down)
        self._stack.append(up)

    # ------------------------------------------------------------------
    # checkpoint / resume

    def checkpoint(self) -> "Dict[str, object]":
        """Snapshot the resumable search state as a JSON-safe dict."""
        from repro.ilp.resilience.checkpoint import (
            CHECKPOINT_SCHEMA,
            form_fingerprint,
            frontier_to_json,
            rc_box_to_json,
            root_lp_to_json,
            values_to_json,
        )

        incumbent = None
        if self._incumbent_values is not None:
            incumbent = {
                "objective": self._incumbent_obj,
                "values": values_to_json(self._incumbent_values),
            }
        # Before solve() the clock has never been started; subtracting
        # the 0.0 placeholder would record the host's monotonic epoch
        # (hours or days) as elapsed search time.
        elapsed = 0.0
        if self._started:
            elapsed = self._elapsed_base + (time.monotonic() - self._start)
        return {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": form_fingerprint(self.form),
            "elapsed_s": elapsed,
            "incumbent": incumbent,
            "frontier": frontier_to_json(self._stack, self.form.lb, self.form.ub),
            "stats": self._stats.as_dict(),
            "exactness_lost": self._exactness_lost,
            "root_lp": root_lp_to_json(
                self._root_lp, self.form.lb, self.form.ub
            ),
            "rc_box": rc_box_to_json(
                self._rc_lb, self._rc_ub, self.form.lb, self.form.ub
            ),
        }

    def save_checkpoint(self, path: "str") -> None:
        """Atomically write the current search state to ``path``."""
        from repro.ilp.resilience.checkpoint import write_checkpoint_atomic

        write_checkpoint_atomic(path, self.checkpoint())
        self._checkpoint_saves += 1

    def resume(self, checkpoint: "Dict[str, object] | str") -> MilpResult:
        """Continue a search from a checkpoint (dict or file path).

        The checkpoint's model fingerprint must match this solver's
        compiled form (same model, same presolve setting), else a
        :class:`~repro.errors.SolverError` is raised.  The time budget
        (``time_limit_s``) applies to *this* process run; the
        checkpoint's elapsed time accumulates only into the reported
        ``wall_time_s`` telemetry.
        """
        from repro.ilp.resilience.checkpoint import (
            read_checkpoint,
            sweep_checkpoint_temps,
        )

        if isinstance(checkpoint, (str, bytes)) or hasattr(checkpoint, "__fspath__"):
            swept = sweep_checkpoint_temps(checkpoint)
            if swept:
                warnings.warn(
                    f"swept {swept} stale checkpoint temp file(s) left by a "
                    f"crashed write into quarantine before resuming",
                    RuntimeWarning,
                    stacklevel=2,
                )
            checkpoint = read_checkpoint(checkpoint)
        self._resume_payload = checkpoint
        return self.solve()

    def _restore_from_checkpoint(self, payload: "Dict[str, object]") -> None:
        """Replace the fresh-root state inside :meth:`solve` with the saved one."""
        from repro.ilp.resilience.checkpoint import (
            decode_node,
            form_fingerprint,
            rc_box_from_json,
            root_lp_from_json,
            values_from_json,
        )

        from repro.errors import CheckpointError

        saved = payload.get("fingerprint")
        actual = form_fingerprint(self.form)
        if saved != actual:
            raise CheckpointError(
                f"checkpoint fingerprint {str(saved)[:12]}... does not match "
                f"this model ({actual[:12]}...); refusing to resume",
                cause="bad-fingerprint",
            )
        try:
            stack = []
            for entry in payload.get("frontier", []):
                lb, ub, depth, bound = decode_node(
                    entry, self.form.lb, self.form.ub
                )
                stack.append(_Node(lb, ub, depth, bound=bound))
            incumbent = payload.get("incumbent")
            incumbent_obj = incumbent_values = None
            if incumbent is not None:
                incumbent_obj = float(incumbent["objective"])
                incumbent_values = values_from_json(incumbent["values"])
            stats = SolveStats.from_dict(payload.get("stats", {}))
            # v2 keys; absent in v1 artifacts, where fixing stays off
            # for the resumed run exactly as it (buggily) always did.
            root_lp = root_lp_from_json(
                payload.get("root_lp"), self.form.lb, self.form.ub
            )
            rc_lb, rc_ub = rc_box_from_json(
                payload.get("rc_box"), self.form.lb, self.form.ub
            )
        except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
            # A schema-valid header over a mangled body (hand-edited,
            # bit-rotted, wrong-version writer): typed, not a KeyError.
            raise CheckpointError(
                f"checkpoint body is malformed "
                f"({type(exc).__name__}: {exc}); refusing to resume",
                cause="malformed",
            ) from exc
        self._stack = stack
        if incumbent is not None:
            self._incumbent_obj = incumbent_obj
            self._incumbent_values = incumbent_values
        # Restore the reduced-cost fixing state: a resumed frontier
        # never contains a depth-0 node, so without this the root-LP
        # snapshot would never be recaptured and every kill+resume run
        # silently lost the fixing optimization (and under-reported
        # vars_fixed_reduced_cost) for its remaining lifetime.
        self._root_lp = root_lp
        self._rc_lb = rc_lb
        self._rc_ub = rc_ub
        stats.presolve = self._stats.presolve
        stats.stop_reason = "exhausted"
        stats.best_bound = None
        stats.gap = None
        self._stats = stats
        self._exactness_lost = bool(payload.get("exactness_lost", False))
        self._elapsed_base = float(payload.get("elapsed_s", 0.0))
        self._resumed = True
        if self._proof is not None:
            if not getattr(self._proof, "continued", False):
                # Fresh proof log over a resumed search: the rc_fix
                # records that would justify clipping into the restored
                # reduced-cost box live in the *previous* log, so the
                # box (and the root snapshot that could extend it)
                # must be dropped or every clip would audit as an
                # unjustified tightening.
                self._root_lp = None
                self._rc_lb = None
                self._rc_ub = None
            epoch = int(getattr(self._proof, "resume_epoch", 0))
            # Namespace this epoch's ids: frontier nodes get e{k}f{i},
            # nodes branched after the resume get e{k}m{n} — disjoint
            # from every earlier epoch's id space.
            self._pid_prefix = f"e{epoch}m"
            self._node_seq = 0
            for i, restored in enumerate(self._stack):
                restored.pid = f"e{epoch}f{i}"
            self._proof.emit_resume(
                [(n.pid, n.lb, n.ub) for n in self._stack]
            )

    def _maybe_checkpoint(self) -> None:
        path = self.config.checkpoint_path
        if not path:
            return
        every = max(1, self.config.checkpoint_every)
        if self._stats.nodes_explored % every == 0:
            self.save_checkpoint(path)

    # ------------------------------------------------------------------
    # incumbent / bound / event bookkeeping

    def _new_incumbent(self, objective: float, values: "Dict[int, float]") -> None:
        self._incumbent_obj = objective
        self._incumbent_values = values
        self._stats.incumbent_updates += 1
        self._apply_reduced_cost_fixing()
        event = IncumbentEvent(
            wall_time_s=time.monotonic() - self._start,
            objective=objective,
            bound=self._open_bound(),
        )
        self._stats.incumbent_events.append(event)
        if self.config.on_incumbent is not None:
            self.config.on_incumbent(event)
        self._maybe_polish()

    def _apply_reduced_cost_fixing(self) -> None:
        """Tighten the global bound box from root reduced costs.

        Soundness: let ``z_r`` be the root LP objective and ``d_j`` the
        reduced cost of an integer variable nonbasic at a root bound.
        Every feasible solution moving ``x_j`` one unit off that bound
        costs at least ``z_r + |d_j|``; when that already reaches the
        incumbent's prune threshold, no *improving* solution moves
        ``x_j`` at all, so pinning it at the root bound preserves the
        optimal objective (tied alternate optima may be cut — fine).
        A 1e-6 safety margin guards the comparison; fixing only ever
        fires once an incumbent exists (the threshold is +inf before),
        so an INFEASIBLE conclusion can never be caused by it.
        """
        if not self.config.reduced_cost_fixing or self._root_lp is None:
            return
        root_obj, reduced, root_lb, root_ub, root_x = self._root_lp
        threshold = self._prune_threshold(self._incumbent_obj)
        if not math.isfinite(threshold):
            return
        if self._rc_lb is None:
            self._rc_lb = self.form.lb.copy()
            self._rc_ub = self.form.ub.copy()
        margin = 1e-6
        newly_fixed = 0
        for raw_idx in self._int_indices:
            j = int(raw_idx)
            if self._rc_lb[j] >= self._rc_ub[j]:
                continue  # already fixed (by us or the model)
            d = float(reduced[j])
            if (
                d > margin
                and abs(root_x[j] - root_lb[j]) <= 1e-7
                and root_obj + d >= threshold + margin
                and self._rc_ub[j] > root_lb[j]
            ):
                if self._proof is not None and not self._proof.certify_rc_fix(
                    j, "lb", self._incumbent_obj
                ):
                    continue
                self._rc_ub[j] = root_lb[j]
                newly_fixed += 1
            elif (
                d < -margin
                and abs(root_x[j] - root_ub[j]) <= 1e-7
                and root_obj - d >= threshold + margin
                and self._rc_lb[j] < root_ub[j]
            ):
                if self._proof is not None and not self._proof.certify_rc_fix(
                    j, "ub", self._incumbent_obj
                ):
                    continue
                self._rc_lb[j] = root_ub[j]
                newly_fixed += 1
        self._stats.vars_fixed_reduced_cost += newly_fixed

    def _open_bound(self) -> "Optional[float]":
        """Best proven global lower bound from the open-node set.

        Every open node carries its parent's LP objective, a valid
        lower bound for its subtree; optimality can only hide in open
        subtrees, so their minimum bounds the global optimum.  With the
        tree exhausted the incumbent itself is the bound.  ``None``
        while no finite bound exists (root LP not yet solved).
        """
        if not self._stack:
            if math.isfinite(self._incumbent_obj):
                return self._incumbent_obj
            return None
        bound = min(node.bound for node in self._stack)
        if math.isfinite(self._incumbent_obj):
            bound = min(bound, self._incumbent_obj)
        return bound if math.isfinite(bound) else None

    def _emit_node_event(self, node: _Node) -> None:
        if self.config.on_node is None:
            return
        if self._stats.nodes_explored % max(1, self.config.callback_every):
            return
        self.config.on_node(
            NodeEvent(
                wall_time_s=time.monotonic() - self._start,
                nodes_explored=self._stats.nodes_explored,
                depth=node.depth,
                open_nodes=len(self._stack),
                incumbent_objective=(
                    None
                    if self._incumbent_values is None
                    else self._incumbent_obj
                ),
                best_bound=self._open_bound(),
            )
        )

    def _finish(self, limit_status: "Optional[SolveStatus]") -> MilpResult:
        """Assemble the result and final telemetry for any stop cause."""
        stats = self._stats
        stats.wall_time_s = self._elapsed_base + (time.monotonic() - self._start)
        stats.resilience = self._resilience_block()
        if self._cut_stats is not None:
            stats.cuts = dict(self._cut_stats)
        if self.config.heuristics:
            stats.heuristics = dict(self._heur)
        kernel_fn = getattr(self.config.lp_backend, "kernel_telemetry", None)
        if callable(kernel_fn):
            stats.kernel = kernel_fn()
        has_incumbent = self._incumbent_values is not None

        if limit_status is None:
            stats.stop_reason = "exhausted"
            if self._exactness_lost:
                # Some node was dropped unresolved: the tree is done
                # but the proof is not.  An incumbent is still a
                # genuine feasible solution — just not provably
                # optimal, and the "infeasible" conclusion would be
                # unsound.
                if not has_incumbent:
                    return MilpResult(status=SolveStatus.ERROR, stats=stats)
                return MilpResult(
                    status=SolveStatus.FEASIBLE,
                    objective=self._incumbent_obj,
                    values=self._incumbent_values,
                    stats=stats,
                )
            if not has_incumbent:
                return MilpResult(status=SolveStatus.INFEASIBLE, stats=stats)
            stats.best_bound = self._incumbent_obj
            stats.gap = 0.0
            return MilpResult(
                status=SolveStatus.OPTIMAL,
                objective=self._incumbent_obj,
                values=self._incumbent_values,
                stats=stats,
                bound=self._incumbent_obj,
                gap=0.0,
            )

        if limit_status is SolveStatus.ERROR:
            stats.stop_reason = "lp_failure_limit"
        elif limit_status is SolveStatus.TIMEOUT:
            stats.stop_reason = "time_limit"
        else:
            stats.stop_reason = "node_limit"
        bound = self._open_bound()
        stats.best_bound = bound
        if not has_incumbent:
            return MilpResult(status=limit_status, stats=stats, bound=bound)
        gap = None if bound is None else relative_gap(self._incumbent_obj, bound)
        stats.gap = gap
        return MilpResult(
            status=SolveStatus.FEASIBLE,
            objective=self._incumbent_obj,
            values=self._incumbent_values,
            stats=stats,
            bound=bound,
            gap=gap,
        )

    def _resilience_block(self) -> "Optional[Dict[str, object]]":
        """The ``solve.resilience`` telemetry block, or None when inert.

        Present whenever any resilience machinery was engaged: a
        resilience-aware backend (anything exposing
        ``resilience_telemetry()``), an LP failure, a dropped node,
        a checkpoint event, or a resume.
        """
        backend = None
        telemetry_fn = getattr(self.config.lp_backend, "resilience_telemetry", None)
        if callable(telemetry_fn):
            backend = telemetry_fn()
        stats = self._stats
        if (
            backend is None
            and not stats.lp_failures
            and not stats.nodes_dropped
            and not self._checkpoint_saves
            and not self._resumed
        ):
            return None
        return {
            "lp_failures": stats.lp_failures,
            "blind_branches": stats.blind_branches,
            "nodes_dropped": stats.nodes_dropped,
            "exactness_lost": self._exactness_lost,
            "checkpoints_saved": self._checkpoint_saves,
            "resumed": self._resumed,
            "backend": backend,
        }

    # ------------------------------------------------------------------
    # branching machinery

    def _decide(
        self, node: _Node, values, fractional
    ) -> "Optional[BranchDecision]":
        """Pick the branching decision, or None to trigger a leaf sub-solve."""
        if not self.config.leaf_subsolve or not self._group0:
            return self.rule.select(self.model, values, fractional)

        frac0 = [idx for idx in fractional if idx in self._group0_set]
        if frac0:
            return self.rule.select(self.model, values, fractional)

        unfixed0 = [
            idx for idx in self._group0 if node.lb[idx] != node.ub[idx]
        ]
        if unfixed0:
            # Group-0 integral in the LP but not yet decided by bounds.
            # Branch on the variable the LP set to 1 (keep/exclude
            # dichotomy): the up-child keeps the LP's assignment (and
            # SOS1 propagation fixes the whole row), the down-child
            # excludes exactly that choice.  Branching on a 0-valued
            # peer instead would enumerate 0-fixings one at a time and
            # blow the tree up from ~k^tasks to ~2^(tasks*k).
            ones = [idx for idx in unfixed0 if values[idx] >= 0.5]
            pool = ones if ones else unfixed0
            pick = min(
                pool,
                key=lambda idx: (
                    self.model.variables[idx].branch_key,
                    idx,
                ),
            )
            return BranchDecision(pick, up_first=True)
        return None  # every group-0 variable bound-fixed: sub-solve

    def _push_children(self, node, decision, values, lp_bound: float) -> None:
        """Split the node on the decided variable.

        For a fractional value the children are the classic
        ``<= floor`` / ``>= ceil`` pair.  For an *integral* value v
        (leaf-fixation branching on an LP-integral variable) the split
        is keep/exclude: one child pins ``>= v`` (v >= 1) or ``<= 0``
        (v == 0), the other excludes v — naive floor/ceil would leave
        one child's bounds unchanged and loop forever.

        Children inherit this node's LP objective as their subtree
        bound (the telemetry layer's source of proven global bounds).
        """
        idx = decision.var_index
        value = values[idx]
        if node.lb[idx] == node.ub[idx]:  # pragma: no cover - defensive
            raise SolverError(f"branching on a fixed variable {idx}")
        down = _Node(
            node.lb.copy(), node.ub.copy(), node.depth + 1,
            bound=lp_bound, subsolved=node.subsolved,
        )
        up = _Node(
            node.lb.copy(), node.ub.copy(), node.depth + 1,
            bound=lp_bound, subsolved=node.subsolved,
        )
        if abs(value - round(value)) > self.config.int_tol:
            down.ub[idx] = math.floor(value)
            up.lb[idx] = math.ceil(value)
        else:
            v = round(value)
            if v >= 1:
                down.ub[idx] = v - 1
                up.lb[idx] = v
            else:
                down.ub[idx] = 0
                up.lb[idx] = 1
        tightens: "List[tuple]" = []
        if up.lb[idx] >= 1.0 and self.config.propagate_sos1:
            for peer in self._sos1_of.get(idx, ()):
                if up.ub[peer] > 0.0:
                    if self._proof is not None:
                        # Only propagate what the checker can re-derive
                        # from a recorded constraint row by exact
                        # interval arithmetic over the current up-box.
                        just = self._proof.justify_tighten(
                            up.lb, up.ub, peer, 0.0
                        )
                        if just is None:
                            continue
                        up.ub[peer] = 0.0
                        tightens.append((int(peer), 0.0, just[0], just[1]))
                    else:
                        up.ub[peer] = 0.0
                    self._stats.sos1_propagations += 1
        if self._proof is not None:
            down.pid = self._next_pid()
            up.pid = self._next_pid()
            self._proof.emit_branch(
                self._node_pid(node), node.lb, node.ub, idx,
                [(down.pid, down.lb, down.ub), (up.pid, up.lb, up.ub)],
                tightens,
            )
        # LIFO stack: push the non-preferred branch first so the
        # preferred one is explored first.
        if decision.up_first:
            self._stack.append(down)
            self._stack.append(up)
        else:
            self._stack.append(up)
            self._stack.append(down)

    def _leaf_subsolve(self, node: _Node):
        """Decide a group-0-fixed leaf exactly with one HiGHS MILP call.

        Returns ``("optimal", (obj, values))``, ``("infeasible", None)``
        or ``("timeout", None)`` — the caller falls back to in-tree
        branching on a timeout so the search stays exact.
        """
        from repro.ilp.milp_backend import solve_milp_scipy

        self._stats.leaf_subsolve_calls += 1
        budget = self.config.subsolve_time_limit_s
        if self.config.time_limit_s is not None:
            remaining = self.config.time_limit_s - (
                time.monotonic() - self._start
            )
            budget = max(0.1, min(budget, remaining))
        if self.config.leaf_solver is not None:
            return self.config.leaf_solver(node.lb, node.ub, budget)
        sub_form = StandardForm(
            c=self.form.c,
            a_ub=self.form.a_ub,
            b_ub=self.form.b_ub,
            a_eq=self.form.a_eq,
            b_eq=self.form.b_eq,
            lb=node.lb,
            ub=node.ub,
            integrality=self.form.integrality,
        )
        result = solve_milp_scipy(sub_form, time_limit_s=budget)
        if result.status is SolveStatus.OPTIMAL:
            return "optimal", (result.objective, plain_values(result.values))
        if result.status is SolveStatus.INFEASIBLE:
            return "infeasible", None
        return "timeout", None

    # ------------------------------------------------------------------
    # helpers

    def _out_of_time(self) -> bool:
        limit = self.config.time_limit_s
        return limit is not None and (time.monotonic() - self._start) >= limit

    def _prune_threshold(self, incumbent_obj: float) -> float:
        """LP bounds at or above this value cannot improve the incumbent."""
        if incumbent_obj is math.inf:
            return math.inf
        if self.config.objective_is_integral:
            # A better integer solution improves by at least 1.
            return incumbent_obj - 1.0 + 1e-6
        return incumbent_obj - 1e-9

    def _fractional_indices(self, values: "Dict[int, float]") -> "List[int]":
        tol = self.config.int_tol
        result: "List[int]" = []
        for idx in self._int_indices:
            v = values[int(idx)]
            if abs(v - round(v)) > tol:
                result.append(int(idx))
        return result

    def _round_integers(self, values: "Dict[int, float]") -> "Dict[int, float]":
        rounded = plain_values(values)
        for idx in self._int_indices:
            rounded[int(idx)] = float(round(values[int(idx)]))
        return rounded
