"""Branching rules: which fractional variable to branch on, and how.

Section 8 of the paper is entirely about this choice: "the variable
choice can be very critical in keeping the size of the b-and-b tree
small".  Its heuristic, implemented by :class:`PaperBranching`:

1. while any ``y[t,p]`` is fractional, pick the one with the lowest
   task priority index ``t`` (topological order) and lowest partition
   ``p`` — and explore the branch that *sets it to 1* first;
2. once the ``y`` are integral, pick any fractional ``u[p,k]`` — this
   cuts off, early, solutions that use an FU that does not fit the
   partition;
3. only then branch on fractional ``x[i,j,k]`` (the linearization of
   the pure scheduling subproblem is tight, so few of these remain);
4. any remaining integer variables last.

Variables carry their group/key/preferred-direction as metadata
(:class:`repro.ilp.expr.Var`), assigned by the formulation; branching
rules just order candidates by it.  Alternative rules reproduce the
paper's implicit baselines: "leave the variable selection to the solver
(which randomly chooses a variable to branch on)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol, Sequence

from repro.ilp.model import Model


@dataclass(frozen=True)
class BranchDecision:
    """Which variable to branch on and which bound to explore first.

    ``up_first`` means: explore ``var >= ceil(value)`` (for 0-1
    variables, ``var = 1``) before ``var <= floor(value)``.
    """

    var_index: int
    up_first: bool


class BranchingRule(Protocol):
    """Strategy interface for branch-variable selection."""

    def select(
        self,
        model: Model,
        values: "Dict[int, float]",
        fractional: "Sequence[int]",
    ) -> BranchDecision:
        """Choose among ``fractional`` (indices of fractional int vars).

        ``fractional`` is non-empty; ``values`` is the LP solution.
        """
        ...  # pragma: no cover - protocol


class PaperBranching:
    """The paper's heuristic: y by (t, p) ascending, then u, then x; 1 first.

    The ordering information lives in each variable's
    ``branch_group``/``branch_key`` metadata; this rule simply takes the
    candidate with the lexicographically smallest
    ``(branch_group, branch_key, index)`` and honours the variable's
    preferred direction (the formulation sets ``branch_up_first=True``
    everywhere, matching "we always take the branch which sets the
    variable value to 1 first").
    """

    def select(self, model, values, fractional) -> BranchDecision:
        best = min(
            fractional,
            key=lambda idx: (
                model.variables[idx].branch_group,
                model.variables[idx].branch_key,
                idx,
            ),
        )
        return BranchDecision(best, model.variables[best].branch_up_first)


class FirstFractionalBranching:
    """Pick the lowest-index fractional variable, down-branch first.

    The classic textbook default; ignores all problem structure.
    """

    def select(self, model, values, fractional) -> BranchDecision:
        return BranchDecision(min(fractional), up_first=False)


class MostFractionalBranching:
    """Pick the variable whose value is closest to 0.5.

    A common general-purpose rule; branches toward the nearest integer
    first.
    """

    def select(self, model, values, fractional) -> BranchDecision:
        best = min(
            fractional, key=lambda idx: (abs(values[idx] - 0.5), idx)
        )
        return BranchDecision(best, up_first=values[best] >= 0.5)


class PseudoRandomBranching:
    """Deterministic stand-in for "the solver randomly chooses".

    Hashes the candidate set together with a seed so runs are exactly
    reproducible while still exercising arbitrary selection order —
    this models the paper's description of an unguided LP solver.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._counter = 0

    def select(self, model, values, fractional) -> BranchDecision:
        self._counter += 1
        ordered = sorted(fractional)
        pick = _mix(self.seed, self._counter) % len(ordered)
        idx = ordered[pick]
        return BranchDecision(idx, up_first=bool(_mix(self.seed, idx) & 1))


def _mix(seed: int, value: int) -> int:
    """A tiny deterministic integer hash (splitmix64 finalizer)."""
    x = (seed * 0x9E3779B97F4A7C15 + value + 1) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (x ^ (x >> 31)) & 0x7FFFFFFF


#: Registry used by benchmarks/CLI to select rules by name.
RULES: "Dict[str, type]" = {
    "paper": PaperBranching,
    "first": FirstFractionalBranching,
    "most-fractional": MostFractionalBranching,
    "pseudo-random": PseudoRandomBranching,
}


def make_rule(name: str, **kwargs) -> BranchingRule:
    """Instantiate a branching rule by registry name."""
    try:
        cls = RULES[name]
    except KeyError:
        raise ValueError(
            f"unknown branching rule {name!r}; known: {sorted(RULES)}"
        ) from None
    return cls(**kwargs)
