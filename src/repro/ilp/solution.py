"""Solver result and telemetry types shared by every backend.

Statuses distinguish the *outcome kinds* the paper's tables need:
optimal (their "Yes" rows), proven infeasible (their "No" rows), and
limit expiry (their ">7200" rows) — which since the telemetry layer
comes in two flavors: FEASIBLE (deadline hit but an incumbent plus a
proven bound/gap are in hand) and TIMEOUT/NODE_LIMIT (expired truly
empty-handed).

Beyond the status, a solve produces a structured telemetry record:

* :class:`SolveStats` — the full counter set of a branch-and-bound run
  (node outcomes by cause, LP calls and cumulative LP time, SOS1 and
  leaf-subsolve hit counts, the incumbent event log, final bound/gap);
* :class:`IncumbentEvent` — one ``(wall_time, objective, bound)``
  improvement event, the trajectory the paper's run-time tables talk
  about;
* :class:`NodeEvent` — a progress snapshot handed to ``on_node``
  callbacks for live traces.

Everything is JSON-serializable via ``as_dict`` so reports and the
benchmark harness can persist a run without reaching into solver
internals.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


class SolveStatus(enum.Enum):
    """Outcome of an LP or MILP solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIMEOUT = "timeout"
    NODE_LIMIT = "node_limit"
    ERROR = "error"

    @property
    def is_success(self) -> bool:
        """Whether a (provably optimal) solution was produced."""
        return self is SolveStatus.OPTIMAL

    @property
    def carries_incumbent(self) -> bool:
        """Whether this status guarantees an attached solution.

        FEASIBLE is exactly "limit hit *with* an incumbent"; OPTIMAL is
        the proven case.  TIMEOUT/NODE_LIMIT mean the search expired
        empty-handed.
        """
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


def relative_gap(objective: float, bound: float) -> float:
    """MIP-style relative optimality gap ``(obj - bound) / max(1, |obj|)``.

    Safe near zero objectives; 0.0 means proven optimal.  For the
    minimization problems here ``bound <= objective`` always holds, so
    the gap is non-negative (clamped defensively).
    """
    return max(0.0, (objective - bound) / max(1.0, abs(objective)))


@dataclass(frozen=True)
class IncumbentEvent:
    """One incumbent improvement: when, to what, against which bound.

    ``bound`` is the best proven global lower bound at the moment of
    the improvement (``None`` while no finite bound exists yet, e.g.
    before the root LP has been solved).
    """

    wall_time_s: float
    objective: float
    bound: Optional[float] = None

    @property
    def gap(self) -> Optional[float]:
        """Relative gap at the time of the event, if a bound existed."""
        if self.bound is None:
            return None
        return relative_gap(self.objective, self.bound)

    def as_dict(self) -> "Dict[str, object]":
        return {
            "wall_time_s": self.wall_time_s,
            "objective": self.objective,
            "bound": self.bound,
            "gap": self.gap,
        }


@dataclass(frozen=True)
class NodeEvent:
    """Progress snapshot delivered to ``on_node`` callbacks."""

    wall_time_s: float
    nodes_explored: int
    depth: int
    open_nodes: int
    incumbent_objective: Optional[float] = None
    best_bound: Optional[float] = None

    @property
    def gap(self) -> Optional[float]:
        """Relative gap at the snapshot, when both sides are known."""
        if self.incumbent_objective is None or self.best_bound is None:
            return None
        return relative_gap(self.incumbent_objective, self.best_bound)

    def as_dict(self) -> "Dict[str, object]":
        return {
            "wall_time_s": self.wall_time_s,
            "nodes_explored": self.nodes_explored,
            "depth": self.depth,
            "open_nodes": self.open_nodes,
            "incumbent_objective": self.incumbent_objective,
            "best_bound": self.best_bound,
            "gap": self.gap,
        }


@dataclass
class SolveStats:
    """Search telemetry of a branch-and-bound run.

    Node accounting: every explored node lands in exactly one outcome
    bucket, so

        nodes_explored == nodes_branched + nodes_pruned_bound
                        + nodes_pruned_infeasible + nodes_integral
                        + nodes_leaf_solved + nodes_dropped

    holds at all times (the telemetry tests assert it).  ``lp_solves``
    counts LP *relaxation* calls only; exact leaf sub-solves are
    tracked separately in ``leaf_subsolve_calls``.

    Resilience accounting: ``lp_failures`` counts LP backend calls
    that ended in a :class:`~repro.errors.SolverError` instead of a
    result; such nodes are *blind-branched* (split without a bound,
    ``blind_branches``) to stay exact, or — when fully fixed and the
    exact leaf decision also fails — dropped (``nodes_dropped``),
    which forfeits the optimality proof.  ``resilience`` carries the
    structured ``solve.resilience`` telemetry block (fault log,
    retry/fallback/quarantine counters, checkpoint events) when any
    resilience machinery was active, else ``None``.
    """

    nodes_explored: int = 0
    nodes_branched: int = 0
    nodes_pruned_bound: int = 0
    nodes_pruned_infeasible: int = 0
    nodes_integral: int = 0
    nodes_leaf_solved: int = 0
    nodes_dropped: int = 0
    lp_solves: int = 0
    lp_failures: int = 0
    blind_branches: int = 0
    lp_time_s: float = 0.0
    incumbent_updates: int = 0
    prober_hits: int = 0
    sos1_propagations: int = 0
    leaf_subsolve_calls: int = 0
    rescue_nodes: int = 0
    max_depth: int = 0
    vars_fixed_reduced_cost: int = 0
    wall_time_s: float = 0.0
    stop_reason: str = "exhausted"
    best_bound: Optional[float] = None
    gap: Optional[float] = None
    incumbent_events: "List[IncumbentEvent]" = field(default_factory=list)
    presolve: "Optional[Dict[str, object]]" = None
    resilience: "Optional[Dict[str, object]]" = None
    kernel: "Optional[Dict[str, object]]" = None
    parallel: "Optional[Dict[str, object]]" = None
    proof: "Optional[Dict[str, object]]" = None
    cuts: "Optional[Dict[str, object]]" = None
    heuristics: "Optional[Dict[str, object]]" = None

    @property
    def lp_calls(self) -> int:
        """Alias for ``lp_solves`` (the telemetry schema's name)."""
        return self.lp_solves

    @property
    def nodes_pruned(self) -> int:
        """Nodes closed without branching, by any cause."""
        return (
            self.nodes_pruned_bound
            + self.nodes_pruned_infeasible
            + self.nodes_integral
            + self.nodes_leaf_solved
            + self.nodes_dropped
        )

    def as_dict(self) -> "Dict[str, object]":
        """Plain JSON-serializable view for reports and artifacts."""
        return {
            "nodes_explored": self.nodes_explored,
            "nodes_branched": self.nodes_branched,
            "nodes_pruned_bound": self.nodes_pruned_bound,
            "nodes_pruned_infeasible": self.nodes_pruned_infeasible,
            "nodes_integral": self.nodes_integral,
            "nodes_leaf_solved": self.nodes_leaf_solved,
            "nodes_dropped": self.nodes_dropped,
            "lp_calls": self.lp_solves,
            "lp_failures": self.lp_failures,
            "blind_branches": self.blind_branches,
            "lp_time_s": self.lp_time_s,
            "incumbent_updates": self.incumbent_updates,
            "prober_hits": self.prober_hits,
            "sos1_propagations": self.sos1_propagations,
            "leaf_subsolve_calls": self.leaf_subsolve_calls,
            "rescue_nodes": self.rescue_nodes,
            "max_depth": self.max_depth,
            "vars_fixed_reduced_cost": self.vars_fixed_reduced_cost,
            "wall_time_s": self.wall_time_s,
            "stop_reason": self.stop_reason,
            "best_bound": self.best_bound,
            "gap": self.gap,
            "incumbent_events": [e.as_dict() for e in self.incumbent_events],
            "presolve": self.presolve,
            "resilience": self.resilience,
            "kernel": self.kernel,
            "parallel": self.parallel,
            "proof": self.proof,
            "cuts": self.cuts,
            "heuristics": self.heuristics,
        }

    @classmethod
    def from_dict(cls, data: "Dict[str, object]") -> "SolveStats":
        """Rebuild stats from :meth:`as_dict` output (checkpoint resume).

        Unknown keys are ignored and missing keys keep their defaults,
        so artifacts written by older minor revisions still load.
        """
        stats = cls()
        for name in (
            "nodes_explored", "nodes_branched", "nodes_pruned_bound",
            "nodes_pruned_infeasible", "nodes_integral", "nodes_leaf_solved",
            "nodes_dropped", "lp_failures", "blind_branches",
            "incumbent_updates", "prober_hits", "sos1_propagations",
            "leaf_subsolve_calls", "rescue_nodes", "max_depth",
            "vars_fixed_reduced_cost",
        ):
            if name in data:
                setattr(stats, name, int(data[name]))
        if "lp_calls" in data:
            stats.lp_solves = int(data["lp_calls"])
        for name in ("lp_time_s", "wall_time_s"):
            if name in data:
                setattr(stats, name, float(data[name]))
        if "stop_reason" in data:
            stats.stop_reason = str(data["stop_reason"])
        for name in ("best_bound", "gap"):
            value = data.get(name)
            if value is not None:
                setattr(stats, name, float(value))
        stats.incumbent_events = [
            IncumbentEvent(
                wall_time_s=float(e["wall_time_s"]),
                objective=float(e["objective"]),
                bound=None if e.get("bound") is None else float(e["bound"]),
            )
            for e in data.get("incumbent_events", [])
        ]
        presolve = data.get("presolve")
        stats.presolve = dict(presolve) if isinstance(presolve, dict) else None
        return stats


class ValueVector(Mapping):
    """Array-backed variable-value vector with a lazy dict interface.

    LP backends historically returned ``{idx: float}`` dicts, which
    branch and bound allocated (and copied) once per node — a
    measurable share of the per-node cost on the paper's models.  This
    wrapper keeps the solver's numpy vector as-is and *presents* it as
    a read-only mapping keyed by variable index, so every existing
    consumer (``values[idx]``, ``values.items()``, ``dict(values)``)
    keeps working without the per-node dict build.

    Keys are exactly ``0..n-1``; negative indices are rejected (a dict
    would raise ``KeyError`` there, and silent wrap-around would be a
    correctness bug).  Equality compares against any mapping with the
    same items, so tests may compare against plain dicts.
    """

    __slots__ = ("_array",)

    def __init__(self, array: "np.ndarray") -> None:
        self._array = np.asarray(array, dtype=float)

    @property
    def array(self) -> "np.ndarray":
        """The underlying vector (shared, treat as read-only)."""
        return self._array

    def __getitem__(self, idx) -> float:
        i = int(idx)
        if i < 0 or i >= self._array.shape[0]:
            raise KeyError(idx)
        return float(self._array[i])

    def __len__(self) -> int:
        return int(self._array.shape[0])

    def __iter__(self):
        return iter(range(self._array.shape[0]))

    def __contains__(self, idx) -> bool:
        try:
            i = int(idx)
        except (TypeError, ValueError):
            return False
        return 0 <= i < self._array.shape[0]

    def __eq__(self, other) -> bool:
        if isinstance(other, ValueVector):
            return bool(np.array_equal(self._array, other._array))
        if isinstance(other, Mapping):
            return len(self) == len(other) and all(
                k in self and self[k] == v for k, v in other.items()
            )
        return NotImplemented

    def __hash__(self):  # mappings are unhashable, match dict
        raise TypeError("unhashable type: 'ValueVector'")

    def __repr__(self) -> str:
        return f"ValueVector(n={len(self)})"

    def to_dict(self) -> "Dict[int, float]":
        """Materialize as a plain ``{index: value}`` dict."""
        return {idx: float(v) for idx, v in enumerate(self._array)}


def plain_values(values: "Optional[Mapping]") -> "Optional[Dict[int, float]]":
    """The one value-materialization accessor for LP/MILP solutions.

    Every consumer that needs a *plain dict* of a solution (checkpoint
    serialization, incumbent rounding, leaf sub-solve payloads) goes
    through here, so the array-backed :class:`ValueVector`
    representation can never silently break a round-trip: both
    representations come out as the same ``{int: float}`` dict.
    """
    if values is None:
        return None
    if isinstance(values, ValueVector):
        return values.to_dict()
    return {int(k): float(v) for k, v in values.items()}


@dataclass(frozen=True)
class LPResult:
    """Result of one LP (relaxation) solve.

    ``values`` maps variable index to value (a plain dict or an
    array-backed :class:`ValueVector`); present only when ``status`` is
    OPTIMAL.  ``reduced_costs``, when a backend provides it, is the
    per-variable reduced-cost vector of the optimal basis — the input
    to reduced-cost variable fixing in branch and bound.  ``dual_ub``
    / ``dual_eq`` are the row duals of the inequality and equality
    systems (sign convention: ``dual_ub <= 0`` for a minimization),
    the raw material of branch-and-bound proof certificates.  All
    three are excluded from equality comparisons (optimization /
    certification hints, not part of the answer).
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: "Optional[Mapping]" = None
    reduced_costs: "Optional[np.ndarray]" = field(
        default=None, compare=False, repr=False
    )
    dual_ub: "Optional[np.ndarray]" = field(
        default=None, compare=False, repr=False
    )
    dual_eq: "Optional[np.ndarray]" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.status is SolveStatus.OPTIMAL:
            if self.objective is None or self.values is None:
                raise ValueError("OPTIMAL LPResult requires objective and values")


@dataclass(frozen=True)
class MilpResult:
    """Result of a full MILP solve (branch and bound or scipy.milp).

    ``bound`` is the best proven lower bound on the optimum; ``gap``
    the relative distance between ``objective`` and ``bound``.  For an
    OPTIMAL result ``bound == objective`` and ``gap == 0.0``; for a
    FEASIBLE (deadline-expired) result the gap quantifies how far the
    incumbent is *proven* to be from optimal.  TIMEOUT / NODE_LIMIT
    mean the limit expired with no incumbent at all.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: "Optional[Dict[int, float]]" = None
    stats: SolveStats = field(default_factory=SolveStats)
    bound: Optional[float] = None
    gap: Optional[float] = None

    @property
    def has_solution(self) -> bool:
        """Whether any integer-feasible solution is attached."""
        return self.values is not None

    @property
    def is_gap_proven(self) -> bool:
        """Whether a finite optimality gap was established."""
        return self.gap is not None and math.isfinite(self.gap)

    def value_by_name(self, model, name: str) -> float:
        """Convenience: value of a variable looked up by model name."""
        if self.values is None:
            raise ValueError(f"result carries no solution (status={self.status})")
        return self.values[model.var_by_name(name).index]

    def telemetry(self) -> "Dict[str, object]":
        """The per-run telemetry record (see docs/DESIGN.md schema)."""
        return {
            "status": self.status.value,
            "objective": self.objective,
            "bound": self.bound,
            "gap": self.gap,
            "stats": self.stats.as_dict(),
        }
