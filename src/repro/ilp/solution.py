"""Solver result types shared by every backend.

Statuses distinguish the *outcome kinds* the paper's tables need:
optimal (their "Yes" rows), proven infeasible (their "No" rows), and
timeout (their ">7200" rows).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class SolveStatus(enum.Enum):
    """Outcome of an LP or MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIMEOUT = "timeout"
    NODE_LIMIT = "node_limit"
    ERROR = "error"

    @property
    def is_success(self) -> bool:
        """Whether a (provably optimal) solution was produced."""
        return self is SolveStatus.OPTIMAL


@dataclass(frozen=True)
class LPResult:
    """Result of one LP (relaxation) solve.

    ``values`` maps variable index to value; present only when
    ``status`` is OPTIMAL.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: "Optional[Dict[int, float]]" = None

    def __post_init__(self) -> None:
        if self.status is SolveStatus.OPTIMAL:
            if self.objective is None or self.values is None:
                raise ValueError("OPTIMAL LPResult requires objective and values")


@dataclass
class SolveStats:
    """Search statistics of a branch-and-bound run."""

    nodes_explored: int = 0
    lp_solves: int = 0
    incumbent_updates: int = 0
    nodes_pruned_bound: int = 0
    nodes_pruned_infeasible: int = 0
    max_depth: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> "Dict[str, float]":
        """Plain-dict view for reports."""
        return {
            "nodes_explored": self.nodes_explored,
            "lp_solves": self.lp_solves,
            "incumbent_updates": self.incumbent_updates,
            "nodes_pruned_bound": self.nodes_pruned_bound,
            "nodes_pruned_infeasible": self.nodes_pruned_infeasible,
            "max_depth": self.max_depth,
            "wall_time_s": self.wall_time_s,
        }


@dataclass(frozen=True)
class MilpResult:
    """Result of a full MILP solve (branch and bound or scipy.milp).

    When ``status`` is TIMEOUT or NODE_LIMIT a feasible-but-unproven
    incumbent may still be present in ``objective``/``values``.
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: "Optional[Dict[int, float]]" = None
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def has_solution(self) -> bool:
        """Whether any integer-feasible solution is attached."""
        return self.values is not None

    def value_by_name(self, model, name: str) -> float:
        """Convenience: value of a variable looked up by model name."""
        if self.values is None:
            raise ValueError(f"result carries no solution (status={self.status})")
        return self.values[model.var_by_name(name).index]
