"""Coordinator <-> worker wire protocol.

One JSON object per line, in both directions, over the worker's
stdin/stdout pipes.  Commands (coordinator -> worker):

* ``{"cmd": "init", "payload": <base64 pickle>}`` — problem context:
  builder address, config spec, root-LP snapshot, rank, chaos knobs.
  Sent once, first.
* ``{"cmd": "chunk", "chunk_id": n, "nodes": [...], "node_budget": b,
  "incumbent_obj": x | null}`` — explore a frontier slice.  Nodes use
  the checkpoint frontier-delta encoding.
* ``{"cmd": "incumbent", "objective": x}`` — broadcast of a better
  incumbent found elsewhere; tightens pruning (and re-runs
  reduced-cost fixing) mid-chunk.
* ``{"cmd": "stop"}`` — exit cleanly.

Events (worker -> coordinator):

* ``{"event": "ready"}`` — init accepted, model fingerprint verified.
* ``{"event": "done", "chunk_id": n, "frontier": [...], "incumbent":
  {...} | null, "stats": {...}, "exactness_lost": b, "abort": b}`` —
  chunk finished; ``frontier`` is the unexplored remainder
  (stack order preserved), ``stats`` the per-chunk counter deltas.
* ``{"event": "error", "message": m}`` — unrecoverable worker failure
  (bad fingerprint, builder crash); the worker exits after sending.

The init payload is pickled (then base64-armored into the JSON line)
because it carries a :class:`~repro.ilp.model.Model`; everything after
init is plain JSON, so a protocol trace is human-readable.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Dict, IO, Optional

from repro.ilp.solution import SolveStats

#: Counters a chunk's stats delta adds into the coordinator aggregate.
#: ``incumbent_updates`` and ``vars_fixed_reduced_cost`` are absent on
#: purpose: the coordinator re-counts incumbents as it adopts them
#: (one improvement can reach it through several workers), and
#: reduced-cost fixing counts are per-process (each worker fixes the
#: same variables independently) — summing them would double-count.
#: They are surfaced per-worker in the ``solve.parallel`` block instead.
MERGE_COUNTERS = (
    "nodes_explored",
    "nodes_branched",
    "nodes_pruned_bound",
    "nodes_pruned_infeasible",
    "nodes_integral",
    "nodes_leaf_solved",
    "nodes_dropped",
    "lp_solves",
    "lp_failures",
    "blind_branches",
    "prober_hits",
    "sos1_propagations",
    "leaf_subsolve_calls",
)


def send_message(stream: "IO[str]", message: "Dict[str, object]") -> None:
    """Write one protocol message; flush so the peer sees it now."""
    stream.write(json.dumps(message, separators=(",", ":")) + "\n")
    stream.flush()


def parse_message(line: str) -> "Optional[Dict[str, object]]":
    """Decode one protocol line; None for blank/undecodable lines.

    Workers share stdout with anything the solver stack might print;
    non-protocol lines are ignored rather than fatal.
    """
    line = line.strip()
    if not line or not line.startswith("{"):
        return None
    try:
        message = json.loads(line)
    except json.JSONDecodeError:
        return None
    return message if isinstance(message, dict) else None


def encode_init_payload(payload: "Dict[str, object]") -> str:
    """Pickle + base64 the init payload for its JSON envelope."""
    return base64.b64encode(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_init_payload(encoded: str) -> "Dict[str, object]":
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))


def stats_delta(after: SolveStats, before: "Dict[str, object]") -> "Dict[str, object]":
    """Per-chunk counter deltas of ``after`` vs a prior as_dict snapshot."""
    after_d = after.as_dict()
    delta: "Dict[str, object]" = {}
    for name in MERGE_COUNTERS:
        key = "lp_calls" if name == "lp_solves" else name
        delta[key] = int(after_d[key]) - int(before.get(key, 0))
    delta["lp_time_s"] = float(after_d["lp_time_s"]) - float(
        before.get("lp_time_s", 0.0)
    )
    delta["max_depth"] = int(after_d["max_depth"])
    delta["incumbent_updates"] = int(after_d["incumbent_updates"]) - int(
        before.get("incumbent_updates", 0)
    )
    delta["vars_fixed_reduced_cost"] = int(
        after_d["vars_fixed_reduced_cost"]
    ) - int(before.get("vars_fixed_reduced_cost", 0))
    return delta


def merge_stats(target: SolveStats, delta: "Dict[str, object]") -> None:
    """Fold one chunk's counter deltas into the coordinator aggregate."""
    for name in MERGE_COUNTERS:
        key = "lp_calls" if name == "lp_solves" else name
        setattr(target, name, getattr(target, name) + int(delta.get(key, 0)))
    target.lp_time_s += float(delta.get("lp_time_s", 0.0))
    target.max_depth = max(target.max_depth, int(delta.get("max_depth", 0)))
