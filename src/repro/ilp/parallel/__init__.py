"""Multi-process branch-and-bound: frontier sharding across workers.

The paper's Tables 3–4 show exact search cost exploding with graph
size; this package scales the PR 5 per-node speedups *across cores* by
sharding the open-node frontier over spawn-isolated worker
interpreters:

* the **coordinator** (:class:`~repro.ilp.parallel.coordinator.\
ParallelBranchAndBound`) ramps up the search inline until the frontier
  is wide enough, then dispatches subtree chunks — each chunk a top
  frontier node plus a node budget — to workers, re-absorbing whatever
  frontier a worker returns (that re-absorption *is* the work
  stealing: a busy subtree's leftovers go back into the shared pool
  and the next idle worker takes them);
* the **shared incumbent** is first-class: every improvement found by
  any worker is broadcast to all others immediately, so bound pruning
  and reduced-cost fixing stay as tight in every process as they would
  be in a sequential run;
* **deterministic replay** (``ParallelConfig(replay=True)``) keeps a
  single chunk in flight, assigned round-robin — the global node
  sequence is then exactly the sequential one, so tests can assert the
  parallel machinery changes *nothing* about the search itself;
* workers are **crash-survivable**: a dead worker's in-flight chunk is
  re-queued and solved by the survivors; with no workers left the
  coordinator finishes the frontier inline, so the answer never
  depends on fleet health.

Subtrees travel between processes in the ``repro.bnb_checkpoint/v2``
frontier-delta encoding; the sharded frontier (pool plus in-flight
chunks) checkpoints through the same codec, so a killed parallel run
resumes — even under ``workers=1``.
"""

from repro.ilp.parallel.config import ParallelConfig
from repro.ilp.parallel.coordinator import ParallelBranchAndBound

__all__ = ["ParallelConfig", "ParallelBranchAndBound"]
