"""Parallel branch-and-bound worker process entry point.

Run as ``python -m repro.ilp.parallel.worker``.  The worker rebuilds
the coordinator's problem context from the pickled init payload (see
:mod:`repro.ilp.parallel.context`), verifies the model fingerprint,
then serves ``chunk`` commands until told to stop: each chunk is a
slice of the shared frontier, explored depth-first through the *same*
:meth:`~repro.ilp.branch_bound.BranchAndBound._process_node` the
sequential solver uses, so every pruning rule, SOS1 propagation, leaf
sub-solve and blind-branch behaves identically in and out of the pool.

Incumbent handling: the coordinator's broadcast objective is adopted
before (and, via the stdin reader thread, during) each chunk, which
both tightens bound pruning and re-runs reduced-cost fixing against
the shipped root-LP snapshot — a worker prunes exactly as hard as a
sequential search that had found the same incumbents.

The chaos knob ``crash_after_nodes`` hard-exits the process
(``os._exit``) after the configured node count, bypassing all cleanup
— the coordinator's crash-recovery path is exercised by a real dead
process, not a simulated one.
"""

from __future__ import annotations

import os
import queue
import sys
import threading
import traceback
from typing import Dict, Optional

from repro.ilp.branch_bound import BranchAndBound, BranchAndBoundConfig, _Node
from repro.ilp.parallel.context import resolve_builder
from repro.ilp.parallel.protocol import (
    decode_init_payload,
    parse_message,
    send_message,
    stats_delta,
)
from repro.ilp.resilience.checkpoint import (
    decode_node,
    form_fingerprint,
    frontier_to_json,
    root_lp_from_json,
    values_to_json,
)

#: Exit code of the deliberate chaos crash (distinct from signals and
#: from clean protocol exits, so tests can assert the cause).
CHAOS_EXIT_CODE = 13


#: Sentinel queued when the coordinator's pipe closes; distinct from
#: "queue momentarily empty" so mid-chunk polling can tell them apart.
_EOF = object()


class _Control:
    """stdin reader thread: commands arrive even mid-chunk."""

    def __init__(self, stream) -> None:
        self.queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._read, args=(stream,), daemon=True
        )
        self._thread.start()

    def _read(self, stream) -> None:
        for line in stream:
            message = parse_message(line)
            if message is not None:
                self.queue.put(message)
        self.queue.put(_EOF)  # coordinator went away

    def get(self):
        """Next command (blocking); ``_EOF`` when the pipe closed."""
        return self.queue.get()

    def poll(self):
        """Next command without blocking; None when nothing is queued."""
        try:
            return self.queue.get_nowait()
        except queue.Empty:
            return None


class Worker:
    def __init__(self, out=None) -> None:
        self._out = out if out is not None else sys.stdout
        self._solver: "Optional[BranchAndBound]" = None
        self._rank = 0
        self._crash_after: "Optional[int]" = None
        self._nodes_total = 0

    # ------------------------------------------------------------------

    def _init(self, message: "Dict[str, object]") -> None:
        payload = decode_init_payload(message["payload"])
        builder = resolve_builder(*payload["builder"])
        context = builder(payload["args"])
        spec = dict(payload.get("config_spec", {}))
        config = BranchAndBoundConfig(
            lp_backend=context["lp_backend"],
            node_prober=context.get("node_prober"),
            leaf_solver=context.get("leaf_solver"),
            incumbent_auditor=context.get("incumbent_auditor"),
            # The coordinator owns the clock, checkpoints, and rescue
            # semantics; a worker only ever explores bounded chunks.
            time_limit_s=None,
            rescue_on_deadline=False,
            presolve=False,
            checkpoint_path=None,
            **spec,
        )
        solver = BranchAndBound(
            context["model"], rule=context.get("rule"), config=config
        )
        cut_rows = payload.get("cuts") or []
        if cut_rows:
            # Install the coordinator's root cuts verbatim instead of
            # re-running the separation loop: the shipped fingerprint is
            # over the extended form, so the check below proves the
            # installed rows match the coordinator's bit for bit.
            from repro.ilp.cuts import extend_standard_form

            solver.base_form = solver.form
            solver.form = extend_standard_form(solver.form, cut_rows)
        actual = form_fingerprint(solver.form)
        expected = payload["fingerprint"]
        if actual != expected:
            raise RuntimeError(
                f"rebuilt model fingerprint {actual[:12]}... does not match "
                f"coordinator's {str(expected)[:12]}...; refusing to solve"
            )
        solver._prepare_run()
        solver._stack = []
        solver._root_lp = root_lp_from_json(
            payload.get("root_lp"), solver.form.lb, solver.form.ub
        )
        proof_spec = payload.get("proof")
        if proof_spec is not None:
            # Proof mode: records accumulate in an in-memory buffer and
            # ship to the coordinator with each done message (a crashed
            # chunk's buffer is deliberately lost — its nodes get
            # requeued, so the log never claims them closed).
            from repro.ilp.certify.proof import ProofBuffer

            buffer = ProofBuffer(
                solver.form,
                objective_is_integral=config.objective_is_integral,
                int_tol=config.int_tol,
            )
            duals = proof_spec.get("root_duals")
            if duals and (duals[0] or duals[1]):
                buffer.set_root_duals(duals[0], duals[1])
            solver._proof = buffer
            solver._owns_proof = False
        self._solver = solver
        self._rank = int(payload.get("rank", 0))
        self._crash_after = payload.get("crash_after_nodes")

    def _adopt_incumbent(self, objective: float) -> None:
        """Apply a broadcast incumbent: tighter pruning + rc fixing.

        The coordinator keeps the value vector; the worker only needs
        the objective (pruning and fixing are threshold-driven), so
        the local values are dropped as stale.
        """
        solver = self._solver
        if objective < solver._incumbent_obj:
            solver._incumbent_obj = float(objective)
            solver._incumbent_values = None
            solver._apply_reduced_cost_fixing()

    def _run_chunk(
        self, message: "Dict[str, object]", control: "_Control"
    ) -> bool:
        """Explore one chunk; returns False when told to stop mid-chunk."""
        solver = self._solver
        form = solver.form
        stack = []
        for entry in message["nodes"]:
            lb, ub, depth, bound = decode_node(entry, form.lb, form.ub)
            stack.append(
                _Node(lb, ub, depth, bound=bound, pid=entry.get("pid"))
            )
        solver._stack = stack
        if solver._proof is not None:
            # Fresh per-chunk id namespace from the coordinator; the
            # buffer is NOT reset — rc_fix records emitted between
            # chunks (incumbent broadcasts) ride along with this one.
            solver._pid_prefix = message.get(
                "pid_prefix", f"c{message['chunk_id']}n"
            )
            solver._node_seq = 0
        incumbent_obj = message.get("incumbent_obj")
        if incumbent_obj is not None:
            self._adopt_incumbent(float(incumbent_obj))
        start_obj = solver._incumbent_obj
        before = solver._stats.as_dict()

        budget = int(message["node_budget"])
        explored = 0
        while (
            solver._stack
            and explored < budget
            and not solver._lp_failure_abort
        ):
            while True:
                command = control.poll()
                if command is None:
                    break
                if command is _EOF or command.get("cmd") == "stop":
                    return False
                if command.get("cmd") == "incumbent":
                    self._adopt_incumbent(float(command["objective"]))
            solver._process_node(solver._stack.pop())
            explored += 1
            self._nodes_total += 1
            if (
                self._crash_after is not None
                and self._nodes_total >= self._crash_after
            ):
                os._exit(CHAOS_EXIT_CODE)

        incumbent = None
        if (
            solver._incumbent_values is not None
            and solver._incumbent_obj < start_obj
        ):
            incumbent = {
                "objective": solver._incumbent_obj,
                "values": values_to_json(solver._incumbent_values),
            }
        send_message(self._out, {
            "event": "done",
            "chunk_id": message["chunk_id"],
            "frontier": frontier_to_json(solver._stack, form.lb, form.ub),
            "incumbent": incumbent,
            "stats": stats_delta(solver._stats, before),
            "exactness_lost": solver._exactness_lost,
            "abort": solver._lp_failure_abort,
            "proof": (
                solver._proof.drain()
                if solver._proof is not None
                else None
            ),
        })
        solver._stack = []
        return True

    # ------------------------------------------------------------------

    def serve(self, in_stream=None) -> int:
        control = _Control(
            in_stream if in_stream is not None else sys.stdin
        )
        try:
            message = control.get()
            if message is _EOF or message.get("cmd") != "init":
                send_message(self._out, {
                    "event": "error",
                    "message": f"expected init, got {message!r}",
                })
                return 1
            self._init(message)
            send_message(self._out, {"event": "ready", "rank": self._rank})
            while True:
                message = control.get()
                if message is _EOF or message.get("cmd") == "stop":
                    return 0
                cmd = message.get("cmd")
                if cmd == "chunk":
                    if not self._run_chunk(message, control):
                        return 0
                elif cmd == "incumbent":
                    self._adopt_incumbent(float(message["objective"]))
                # Unknown commands are ignored: a newer coordinator may
                # speak a superset of this protocol.
        except Exception:
            send_message(self._out, {
                "event": "error",
                "message": traceback.format_exc(limit=20),
            })
            return 1


def main() -> int:
    return Worker().serve()


if __name__ == "__main__":
    sys.exit(main())
