"""Configuration of the parallel branch-and-bound coordinator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class ParallelConfig:
    """Knobs of the worker fleet and the sharding policy.

    Parameters
    ----------
    workers:
        Number of spawn-isolated worker interpreters.  ``1`` is legal
        (useful for checkpoint/protocol testing); ``0`` or less is
        rejected by the coordinator.
    chunk_node_budget:
        Maximum nodes a worker explores per chunk before returning its
        remaining frontier to the pool.  Small budgets steal work
        aggressively (good load balance, more protocol traffic); large
        budgets amortize messaging (good throughput, coarser stealing).
    replay:
        Deterministic-replay mode: exactly one chunk in flight at a
        time, dispatched round-robin over the fleet.  The global node
        sequence is then identical to the sequential solver's, so the
        solve signature (status / objective / nodes explored) matches
        ``workers=1`` exactly.  A testing mode — it serializes the
        search and gains no wall-clock speedup by construction.
    chunk_timeout_s:
        Wall-clock budget per dispatched chunk; a worker past it is
        SIGKILLed by the substrate watchdog and its chunk re-queued.
    rampup_nodes:
        Maximum nodes the coordinator explores inline before sharding;
        rampup also stops as soon as the frontier reaches
        ``2 * workers`` open nodes.  Small trees may finish entirely
        during rampup, which is the correct degenerate behaviour.
    poll_interval_s:
        Coordinator event-loop wait granularity.
    worker_log_dir:
        Directory for per-worker stderr logs; defaults to a temporary
        directory that is cleaned up with the run.
    crash_after_nodes:
        Chaos knob: ``{rank: n}`` makes worker ``rank`` hard-exit
        (``os._exit``) after exploring ``n`` nodes — the crash-recovery
        tests' hook, default off.
    inline_fallback:
        When every worker is dead, finish the remaining frontier in the
        coordinator process instead of failing the solve.
    """

    workers: int = 2
    chunk_node_budget: int = 64
    replay: bool = False
    chunk_timeout_s: float = 300.0
    rampup_nodes: int = 64
    poll_interval_s: float = 0.02
    worker_log_dir: "Optional[str]" = None
    crash_after_nodes: "Optional[Dict[int, int]]" = None
    inline_fallback: bool = True
