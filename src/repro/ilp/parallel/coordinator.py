"""The parallel branch-and-bound coordinator.

:class:`ParallelBranchAndBound` subclasses the sequential solver and
replaces only the middle of :meth:`solve`: after the shared
``_prepare_run`` rampup it dispatches frontier chunks to a fleet of
spawn-isolated workers, and on completion funnels into the shared
``_finish_run`` — so status semantics, rescue dives, checkpoint
persistence, and telemetry assembly are literally the sequential
code paths, not reimplementations.

Fleet mechanics (see the package docstring for the architecture):

* one chunk = the current top frontier node plus a node budget; the
  worker returns whatever frontier remains, which re-enters the shared
  pool — that re-absorption is the work-stealing mechanism;
* incumbent improvements are adopted through the sequential
  ``_new_incumbent`` (so reduced-cost fixing and incumbent telemetry
  fire exactly as always) and broadcast to every other live worker;
* a worker that dies — crash, chaos ``os._exit``, or watchdog SIGKILL
  past ``chunk_timeout_s`` — has its in-flight chunk re-queued; the
  survivors absorb the work, and with no survivors the coordinator
  finishes the frontier inline (``inline_fallback``);
* in replay mode at most one chunk is in flight, assigned round-robin,
  making the global node sequence identical to ``workers=1``.
"""

from __future__ import annotations

import queue
import subprocess
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import SolverError
from repro.ilp.branch_bound import (
    BranchAndBound,
    BranchAndBoundConfig,
    _Node,
)
from repro.ilp.branching import BranchingRule
from repro.ilp.model import Model
from repro.ilp.parallel.config import ParallelConfig
from repro.ilp.parallel.context import builder_address, plain_context
from repro.ilp.parallel.protocol import (
    encode_init_payload,
    merge_stats,
    parse_message,
    send_message,
)
from repro.ilp.resilience.checkpoint import (
    encode_node,
    form_fingerprint,
    root_lp_to_json,
    values_from_json,
)
from repro.ilp.solution import MilpResult, SolveStatus
from repro.runner.substrate import Watchdog, spawn_worker, worker_env

#: Config fields shipped verbatim to workers (everything else in the
#: worker's config is either rebuilt by the context builder or owned
#: by the coordinator — clock, checkpoints, rescue).
_SHIPPED_CONFIG_FIELDS = (
    "int_tol",
    "objective_is_integral",
    "propagate_sos1",
    "leaf_subsolve",
    "subsolve_time_limit_s",
    "lp_failure_limit",
    "reduced_cost_fixing",
    # Heuristics run independently in each worker; "cuts" is deliberately
    # absent — workers install the coordinator's serialized cut rows from
    # the init payload instead of re-running the root separation loop.
    "heuristics",
    "dive_every",
    "dive_max_lp",
    "polish_max_lp",
)

#: How long to wait for a worker's ready handshake before declaring it
#: stillborn (interpreter start + imports + model rebuild).
_READY_TIMEOUT_S = 120.0


class _WorkerHandle:
    """Coordinator-side state of one worker process."""

    def __init__(self, rank: int, proc: "subprocess.Popen", log_handle) -> None:
        self.rank = rank
        self.proc = proc
        self.log_handle = log_handle
        self.alive = True
        self.ready = False
        self.flags: "Dict[str, bool]" = {"watchdog_killed": False}
        self.in_flight: "Optional[Dict[str, object]]" = None  # wire chunk
        self.in_flight_nodes: "List[_Node]" = []
        self.nodes_explored = 0
        self.vars_fixed = 0
        self.crashed = False

    def send(self, message: "Dict[str, object]") -> bool:
        try:
            send_message(self.proc.stdin, message)
            return True
        except (BrokenPipeError, OSError, ValueError):
            return False


class ParallelBranchAndBound(BranchAndBound):
    """Frontier-sharding multi-process solver; sequential drop-in.

    ``worker_args`` parameterizes the context builder that each worker
    calls to rebuild the problem (see
    :mod:`repro.ilp.parallel.context`); by default the model and rule
    are pickled through :func:`~repro.ilp.parallel.context.plain_context`.
    The result contract is the sequential solver's, plus a
    ``stats.parallel`` telemetry block.
    """

    def __init__(
        self,
        model: Model,
        rule: "Optional[BranchingRule]" = None,
        config: "Optional[BranchAndBoundConfig]" = None,
        parallel: "Optional[ParallelConfig]" = None,
        context_builder=None,
        worker_args: "Optional[Dict[str, object]]" = None,
    ) -> None:
        super().__init__(model, rule, config)
        self.parallel = parallel if parallel is not None else ParallelConfig()
        if self.parallel.workers < 1:
            raise SolverError(
                f"ParallelConfig.workers must be >= 1, "
                f"got {self.parallel.workers}"
            )
        self._context_builder = (
            context_builder if context_builder is not None else plain_context
        )
        self._worker_args = worker_args
        self._fleet: "List[_WorkerHandle]" = []
        self._events: "queue.Queue" = queue.Queue()
        self._watchdog: "Optional[Watchdog]" = None
        self._tmp_log_dir: "Optional[tempfile.TemporaryDirectory]" = None
        self._ptelemetry: "Dict[str, object]" = {}

    # ------------------------------------------------------------------
    # lifecycle

    def solve(self) -> MilpResult:
        short_circuit = self._prepare_run()
        if short_circuit is not None:
            return short_circuit

        self._ptelemetry = {
            "workers": self.parallel.workers,
            "replay": self.parallel.replay,
            "rampup_nodes": 0,
            "chunks_dispatched": 0,
            "chunks_requeued": 0,
            "chunks_timed_out": 0,
            "worker_crashes": 0,
            "incumbent_broadcasts": 0,
            "inline_fallback_nodes": 0,
        }

        limit_status = self._rampup()
        if limit_status is None and self._stack:
            try:
                limit_status = self._parallel_phase()
            finally:
                self._shutdown_fleet()
        self._ptelemetry["workers_detail"] = [
            {
                "rank": w.rank,
                "nodes_explored": w.nodes_explored,
                "vars_fixed_reduced_cost": w.vars_fixed,
                "crashed": w.crashed,
            }
            for w in self._fleet
        ]
        self._stats.parallel = self._ptelemetry
        return self._finish_run(limit_status)

    def _rampup(self) -> "Optional[SolveStatus]":
        """Widen the frontier inline before sharding.

        Runs the sequential loop until the frontier holds at least two
        nodes per worker (or the rampup node budget is spent, or the
        tree is done).  This is also where the root LP is solved and
        its reduced-cost snapshot captured for shipping to workers.
        Returns a limit status if a limit fired during rampup.
        """
        target = 2 * self.parallel.workers
        budget = max(self.parallel.rampup_nodes, 1)
        while self._stack and len(self._stack) < target:
            if self._lp_failure_abort:
                return SolveStatus.ERROR
            if self._out_of_time():
                return SolveStatus.TIMEOUT
            if (
                self.config.node_limit is not None
                and self._stats.nodes_explored >= self.config.node_limit
            ):
                return SolveStatus.NODE_LIMIT
            if self._stats.nodes_explored >= budget:
                break
            self._process_node(self._stack.pop())
            self._maybe_checkpoint()
        self._ptelemetry["rampup_nodes"] = self._stats.nodes_explored
        return None

    # ------------------------------------------------------------------
    # fleet management

    def _spawn_fleet(self) -> None:
        log_dir = self.parallel.worker_log_dir
        if log_dir is None:
            self._tmp_log_dir = tempfile.TemporaryDirectory(
                prefix="repro-parallel-"
            )
            log_dir = self._tmp_log_dir.name
        Path(log_dir).mkdir(parents=True, exist_ok=True)

        init_base = {
            "builder": builder_address(self._context_builder),
            "fingerprint": form_fingerprint(self.form),
            "config_spec": {
                name: getattr(self.config, name)
                for name in _SHIPPED_CONFIG_FIELDS
            },
            "root_lp": root_lp_to_json(
                self._root_lp, self.form.lb, self.form.ub
            ),
            # Root cutting planes travel as serialized rows; the shipped
            # fingerprint is over the *extended* form, so the worker's
            # post-install fingerprint check validates the installation.
            "cuts": [row.as_dict() for row in self._cut_rows],
        }
        if self._proof is not None:
            # Workers build a ProofBuffer over their rebuilt form; the
            # root duals let them pre-validate reduced-cost fixes with
            # the same exact justification the coordinator recorded.
            y_ub, y_eq = self._proof.root_duals_sparse()
            init_base["proof"] = {"root_duals": [y_ub, y_eq]}
        crash_plan = self.parallel.crash_after_nodes or {}
        for rank in range(self.parallel.workers):
            log_handle = open(Path(log_dir) / f"worker-{rank}.log", "w")  # noqa: SIM115 - worker-lifetime
            proc = spawn_worker(
                ["-m", "repro.ilp.parallel.worker"],
                stdout=subprocess.PIPE,
                stderr=log_handle,
                stdin=subprocess.PIPE,
                env=worker_env(),
                text=True,
            )
            handle = _WorkerHandle(rank, proc, log_handle)
            self._fleet.append(handle)
            payload = dict(
                init_base,
                args=self._build_worker_args(),
                rank=rank,
                crash_after_nodes=crash_plan.get(rank),
            )
            handle.send({
                "cmd": "init",
                "payload": encode_init_payload(payload),
            })
            threading.Thread(
                target=self._read_worker, args=(handle,), daemon=True
            ).start()
        self._watchdog = Watchdog()
        self._watchdog.start()

    def _build_worker_args(self) -> "Dict[str, object]":
        if self._worker_args is not None:
            return self._worker_args
        return {"model": self.model, "rule": self.rule}

    def _read_worker(self, handle: _WorkerHandle) -> None:
        for raw in handle.proc.stdout:
            if isinstance(raw, bytes):
                raw = raw.decode("utf-8", "replace")
            message = parse_message(raw)
            if message is not None:
                self._events.put((handle.rank, message))
        self._events.put((handle.rank, None))  # EOF

    def _await_ready(self) -> None:
        """Consume ready/error handshakes until the fleet is settled."""
        deadline = time.monotonic() + _READY_TIMEOUT_S
        while any(w.alive and not w.ready for w in self._fleet):
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                for w in self._fleet:
                    if w.alive and not w.ready:
                        self._mark_dead(w)
                break
            try:
                rank, message = self._events.get(timeout=timeout)
            except queue.Empty:
                continue
            handle = self._fleet[rank]
            if message is None or message.get("event") == "error":
                if message is not None:
                    self._log_worker_error(handle, message)
                self._mark_dead(handle)
            elif message.get("event") == "ready":
                handle.ready = True

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        handle.crashed = True
        self._ptelemetry["worker_crashes"] += 1
        if handle.flags.get("watchdog_killed"):
            self._ptelemetry["chunks_timed_out"] += 1
        if self._watchdog is not None:
            self._watchdog.unwatch(handle.rank)
        if handle.in_flight_nodes:
            # At-least-once: the chunk goes back to the pool untouched.
            self._stack.extend(handle.in_flight_nodes)
            handle.in_flight = None
            handle.in_flight_nodes = []
            self._ptelemetry["chunks_requeued"] += 1
        try:
            handle.proc.kill()
        except OSError:
            pass

    def _shutdown_fleet(self) -> None:
        if self._watchdog is not None:
            self._watchdog.stop()
        for handle in self._fleet:
            if handle.alive:
                handle.send({"cmd": "stop"})
        for handle in self._fleet:
            try:
                handle.proc.stdin.close()
            except (OSError, ValueError, AttributeError):
                pass
            try:
                handle.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                handle.proc.kill()
                handle.proc.wait(timeout=5)
            try:
                handle.proc.stdout.close()
            except (OSError, ValueError, AttributeError):
                pass
            handle.log_handle.close()
        if self._tmp_log_dir is not None:
            self._tmp_log_dir.cleanup()
            self._tmp_log_dir = None

    def _log_worker_error(self, handle, message) -> None:
        try:
            handle.log_handle.write(
                f"\n[coordinator] worker error event:\n"
                f"{message.get('message')}\n"
            )
            handle.log_handle.flush()
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    # the dispatch loop

    def _parallel_phase(self) -> "Optional[SolveStatus]":
        self._spawn_fleet()
        self._await_ready()
        chunk_seq = 0
        replay_next_rank = 0
        last_checkpoint_nodes = self._stats.nodes_explored

        while True:
            if self._lp_failure_abort:
                self._requeue_all_in_flight()
                return SolveStatus.ERROR
            if self._out_of_time():
                self._requeue_all_in_flight()
                return SolveStatus.TIMEOUT
            if (
                self.config.node_limit is not None
                and self._stats.nodes_explored >= self.config.node_limit
            ):
                self._requeue_all_in_flight()
                return SolveStatus.NODE_LIMIT

            alive = [w for w in self._fleet if w.alive and w.ready]
            in_flight = [w for w in alive if w.in_flight is not None]
            if not alive:
                return self._inline_fallback()

            # Dispatch to every idle worker (one, round-robin, in replay).
            if self.parallel.replay:
                if self._stack and not in_flight:
                    handle = self._next_replay_worker(alive, replay_next_rank)
                    replay_next_rank = handle.rank + 1
                    chunk_seq = self._dispatch_chunk(handle, chunk_seq)
            else:
                for handle in alive:
                    if not self._stack:
                        break
                    if handle.in_flight is None:
                        chunk_seq = self._dispatch_chunk(handle, chunk_seq)

            in_flight = [
                w for w in self._fleet
                if w.alive and w.in_flight is not None
            ]
            if not self._stack and not in_flight:
                return None  # tree exhausted: the optimality path

            # Wait for something to happen.
            try:
                rank, message = self._events.get(
                    timeout=self.parallel.poll_interval_s
                )
            except queue.Empty:
                continue
            handle = self._fleet[rank]
            if message is None or message.get("event") == "error":
                if message is not None:
                    self._log_worker_error(handle, message)
                self._mark_dead(handle)
                continue
            if message.get("event") == "done":
                self._absorb_done(handle, message)
                every = max(1, self.config.checkpoint_every)
                if (
                    self.config.checkpoint_path
                    and self._stats.nodes_explored - last_checkpoint_nodes
                    >= every
                ):
                    self.save_checkpoint(self.config.checkpoint_path)
                    last_checkpoint_nodes = self._stats.nodes_explored

    def _next_replay_worker(self, alive, next_rank) -> _WorkerHandle:
        """Round-robin over live ranks, deterministically."""
        for handle in alive:
            if handle.rank >= next_rank:
                return handle
        return alive[0]

    def _dispatch_chunk(self, handle: _WorkerHandle, chunk_seq: int) -> int:
        node = self._stack.pop()
        chunk = {
            "cmd": "chunk",
            "chunk_id": chunk_seq,
            "nodes": [
                encode_node(
                    node.lb, node.ub, node.depth, node.bound,
                    self.form.lb, self.form.ub,
                    pid=node.pid,
                )
            ],
            "node_budget": max(1, self.parallel.chunk_node_budget),
            "incumbent_obj": (
                self._incumbent_obj
                if self._incumbent_values is not None
                else None
            ),
        }
        if self._proof is not None:
            # Worker-side node ids live under this chunk's namespace
            # (epoch-qualified after a resume), disjoint from every
            # other chunk's and from the coordinator's own ids.
            epoch_ns = self._pid_prefix[:-1]  # "m" -> "", "e1m" -> "e1"
            chunk["pid_prefix"] = f"{epoch_ns}c{chunk_seq}n"
        if not handle.send(chunk):
            self._stack.append(node)
            self._mark_dead(handle)
            return chunk_seq
        handle.in_flight = chunk
        handle.in_flight_nodes = [node]
        self._ptelemetry["chunks_dispatched"] += 1
        if self._watchdog is not None:
            handle.flags["watchdog_killed"] = False
            self._watchdog.watch(
                handle.rank,
                handle.proc,
                time.monotonic() + self.parallel.chunk_timeout_s,
                handle.flags,
            )
        return chunk_seq + 1

    def _absorb_done(
        self, handle: _WorkerHandle, message: "Dict[str, object]"
    ) -> None:
        if self._watchdog is not None:
            self._watchdog.unwatch(handle.rank)
        handle.in_flight = None
        handle.in_flight_nodes = []

        # Append the chunk's proof records before anything downstream
        # can act on its results: a crashed chunk ships nothing, so the
        # log never claims a subtree that was not actually closed.
        proof_records = message.get("proof")
        if self._proof is not None and proof_records:
            self._proof.append_batch(proof_records)

        delta = message.get("stats", {})
        merge_stats(self._stats, delta)
        handle.nodes_explored += int(delta.get("nodes_explored", 0))
        handle.vars_fixed += int(delta.get("vars_fixed_reduced_cost", 0))

        if message.get("exactness_lost"):
            self._exactness_lost = True
        if message.get("abort"):
            self._lp_failure_abort = True

        incumbent = message.get("incumbent")
        if incumbent is not None:
            objective = float(incumbent["objective"])
            if objective < self._incumbent_obj:
                self._new_incumbent(
                    objective, values_from_json(incumbent["values"])
                )
                for other in self._fleet:
                    if other.alive and other.ready and other is not handle:
                        if other.send({
                            "cmd": "incumbent",
                            "objective": objective,
                        }):
                            self._ptelemetry["incumbent_broadcasts"] += 1

        # Returned frontier re-enters the shared pool (stack order is
        # preserved end-to-end, so DFS discipline survives sharding).
        from repro.ilp.resilience.checkpoint import decode_node

        for entry in message.get("frontier", []):
            lb, ub, depth, bound = decode_node(
                entry, self.form.lb, self.form.ub
            )
            self._stack.append(
                _Node(lb, ub, depth, bound=bound, pid=entry.get("pid"))
            )

    def _requeue_all_in_flight(self) -> None:
        """Pull every in-flight chunk back into the frontier.

        Used at limit stops so the open-node set (and hence the proven
        bound and any final checkpoint) accounts for work that was out
        at sea when the whistle blew.
        """
        for handle in self._fleet:
            if handle.in_flight_nodes:
                self._stack.extend(handle.in_flight_nodes)
                handle.in_flight = None
                handle.in_flight_nodes = []
                self._ptelemetry["chunks_requeued"] += 1

    def _inline_fallback(self) -> "Optional[SolveStatus]":
        """Every worker is dead: finish the frontier in-process.

        The answer must never depend on fleet health; with
        ``inline_fallback`` disabled the run honestly degrades to
        FEASIBLE/ERROR via the exactness-lost path instead.
        """
        self._requeue_all_in_flight()
        if not self.parallel.inline_fallback:
            self._exactness_lost = True
            if self._proof is not None:
                # These subtrees will never be explored: forfeit them
                # explicitly or the audit would see them vanish.
                for node in self._stack:
                    self._proof.emit_forfeit(
                        self._node_pid(node), "dropped", node.lb, node.ub
                    )
            self._stack.clear()
            return None
        start_nodes = self._stats.nodes_explored
        while self._stack:
            if self._lp_failure_abort:
                return SolveStatus.ERROR
            if self._out_of_time():
                return SolveStatus.TIMEOUT
            if (
                self.config.node_limit is not None
                and self._stats.nodes_explored >= self.config.node_limit
            ):
                return SolveStatus.NODE_LIMIT
            self._process_node(self._stack.pop())
            self._maybe_checkpoint()
        self._ptelemetry["inline_fallback_nodes"] = (
            self._stats.nodes_explored - start_nodes
        )
        return None

    # ------------------------------------------------------------------
    # checkpointing the sharded frontier

    def checkpoint(self) -> "Dict[str, object]":
        """Snapshot including in-flight chunks (at-least-once resume).

        In-flight nodes are appended above the pool, so a resumed
        search revisits them first — they may be explored twice across
        a kill+resume, never zero times.
        """
        saved = self._stack
        try:
            in_flight = [
                node
                for handle in self._fleet
                for node in handle.in_flight_nodes
            ]
            self._stack = saved + in_flight
            return super().checkpoint()
        finally:
            self._stack = saved
