"""Worker-side problem-context construction.

A worker cannot receive the coordinator's live solver: the interesting
parts of a :class:`~repro.ilp.branch_bound.BranchAndBoundConfig` —
node prober, leaf solver, resilient backend chains — are closures,
which do not pickle.  What ships instead is a *builder address*
(module + attribute strings) plus picklable arguments; the worker
resolves the builder and calls it to rebuild the same context from
scratch in its own interpreter.  The coordinator's model fingerprint
then certifies the rebuild produced the identical search space.

A builder is any ``f(args) -> dict`` returning:

* ``"model"`` (required) — the :class:`~repro.ilp.model.Model`;
* ``"rule"`` — branching rule instance (default
  :class:`~repro.ilp.branching.PaperBranching`);
* ``"lp_backend"`` — LP backend callable;
* ``"node_prober"`` / ``"leaf_solver"`` — the per-problem closures.

:func:`plain_context` is the generic builder (pickled model, named
kernel, optional fault injection); the temporal-partitioning builder
lives in :mod:`repro.core.parallel_support` next to the closures it
rebuilds.
"""

from __future__ import annotations

import importlib
from typing import Dict

from repro.errors import SolverError


def builder_address(builder) -> "tuple[str, str]":
    """The ``(module, qualname)`` address of a module-level builder."""
    return builder.__module__, builder.__qualname__


def resolve_builder(module: str, name: str):
    """Import and return the builder callable at ``module:name``."""
    try:
        mod = importlib.import_module(module)
        builder = getattr(mod, name)
    except (ImportError, AttributeError) as exc:
        raise SolverError(
            f"cannot resolve worker context builder {module}:{name}: {exc}"
        ) from exc
    if not callable(builder):
        raise SolverError(
            f"worker context builder {module}:{name} is not callable"
        )
    return builder


def plain_context(args: "Dict[str, object]") -> "Dict[str, object]":
    """Generic builder: pickled model + named kernel (+ chaos faults).

    ``args`` keys: ``model`` (Model, required), ``rule`` (optional),
    ``lp_kernel`` (``"incremental"`` | ``"scipy"``, default
    incremental), ``fault_plan`` (optional
    :class:`~repro.ilp.resilience.FaultPlan` wrapping the backend with
    seeded fault injection — the chaos tests' hook).
    """
    from repro.ilp.incremental import IncrementalLPSolver
    from repro.ilp.scipy_backend import solve_lp_scipy

    kernel = args.get("lp_kernel", "incremental")
    if kernel == "incremental":
        backend = IncrementalLPSolver()
    elif kernel == "scipy":
        backend = solve_lp_scipy
    else:
        raise SolverError(f"unknown worker lp_kernel {kernel!r}")
    fault_plan = args.get("fault_plan")
    if fault_plan is not None:
        from repro.ilp.resilience import FaultInjectingBackend

        backend = FaultInjectingBackend(backend, fault_plan)
    return {
        "model": args["model"],
        "rule": args.get("rule"),
        "lp_backend": backend,
    }
