"""Self-contained 0-1 mixed-integer linear programming infrastructure.

The paper solved its models with ``lp_solve`` (a mid-90s public-domain
LP/ILP code) driven by custom variable-selection rules.  This package
plays that role here, fully in-repo:

* :mod:`~repro.ilp.expr` / :mod:`~repro.ilp.model` — an algebraic
  modeling layer (variables, linear expressions, constraints,
  objective) with branching metadata on variables;
* :mod:`~repro.ilp.standard_form` — compilation to sparse matrix form;
* :mod:`~repro.ilp.simplex` — a pure-numpy dense two-phase primal
  simplex for LPs (reference implementation, cross-checked against
  scipy in the test suite);
* :mod:`~repro.ilp.scipy_backend` — fast LP relaxations via
  ``scipy.optimize.linprog`` (HiGHS);
* :mod:`~repro.ilp.incremental` — the persistent-model LP kernel for
  the branch-and-bound hot loop: compile once, mutate bounds per node,
  warm-start HiGHS via ``highspy`` when importable, LRU-cache repeated
  node solves;
* :mod:`~repro.ilp.branch_bound` — a branch-and-bound engine with
  pluggable :mod:`~repro.ilp.branching` rules, including the paper's
  heuristic (branch on ``y`` in topological priority order, 1-branch
  first, then ``u``, then ``x``);
* :mod:`~repro.ilp.milp_backend` — an independent
  ``scipy.optimize.milp`` path used as the "leave variable selection to
  the solver" baseline and as a correctness cross-check;
* :mod:`~repro.ilp.lp_io` — CPLEX-LP-format export for debugging and
  for feeding external solvers;
* :mod:`~repro.ilp.resilience` — fault injection, the validating
  retry/fallback LP backend chain, and checkpoint/resume of the
  branch-and-bound search state.
"""

from repro.ilp.expr import LinExpr, Var
from repro.ilp.model import Constraint, Model, Sense
from repro.ilp.solution import (
    IncumbentEvent,
    LPResult,
    MilpResult,
    NodeEvent,
    SolveStats,
    SolveStatus,
    ValueVector,
    plain_values,
)
from repro.ilp.standard_form import StandardForm, compile_standard_form
from repro.ilp.scipy_backend import solve_lp_scipy
from repro.ilp.simplex import solve_lp_simplex
from repro.ilp.incremental import IncrementalLPSolver
from repro.ilp.branching import (
    BranchDecision,
    BranchingRule,
    FirstFractionalBranching,
    MostFractionalBranching,
    PaperBranching,
    PseudoRandomBranching,
)
from repro.ilp.branch_bound import BranchAndBound, BranchAndBoundConfig
from repro.ilp.milp_backend import solve_milp_scipy
from repro.ilp.lp_io import write_lp_format
from repro.ilp.resilience import (
    FaultInjectingBackend,
    FaultPlan,
    ResilientLPBackend,
)

__all__ = [
    "Var",
    "LinExpr",
    "Model",
    "Constraint",
    "Sense",
    "SolveStatus",
    "SolveStats",
    "IncumbentEvent",
    "NodeEvent",
    "LPResult",
    "MilpResult",
    "ValueVector",
    "plain_values",
    "StandardForm",
    "compile_standard_form",
    "solve_lp_scipy",
    "solve_lp_simplex",
    "IncrementalLPSolver",
    "BranchDecision",
    "BranchingRule",
    "PaperBranching",
    "MostFractionalBranching",
    "FirstFractionalBranching",
    "PseudoRandomBranching",
    "BranchAndBound",
    "BranchAndBoundConfig",
    "solve_milp_scipy",
    "write_lp_format",
    "FaultPlan",
    "FaultInjectingBackend",
    "ResilientLPBackend",
]
