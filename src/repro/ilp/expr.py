"""Linear-expression algebra for the modeling layer.

:class:`Var` is a lightweight handle into a :class:`~repro.ilp.model.Model`;
:class:`LinExpr` is a sparse linear combination of variables plus a
constant.  Arithmetic operators build expressions, and comparison
operators against numbers or expressions produce
:class:`~repro.ilp.model.Constraint` objects, giving the familiar
algebraic style::

    model.add(2 * x + y <= 3, name="cap")
    model.add(x - y == 0)

Expressions are immutable from the caller's perspective; all operators
return new objects.
"""

from __future__ import annotations

import numbers
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.errors import ModelError

Number = Union[int, float]


class Var:
    """Handle to one model variable.

    Created only by :meth:`repro.ilp.model.Model.add_var`; carries its
    index, name, bounds, integrality and branching metadata.  Identity
    is by (model id, index).
    """

    __slots__ = (
        "index",
        "name",
        "lb",
        "ub",
        "is_integer",
        "branch_group",
        "branch_key",
        "branch_up_first",
    )

    def __init__(
        self,
        index: int,
        name: str,
        lb: float,
        ub: float,
        is_integer: bool,
        branch_group: int = 99,
        branch_key: Tuple = (),
        branch_up_first: bool = True,
    ) -> None:
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub
        self.is_integer = is_integer
        self.branch_group = branch_group
        self.branch_key = branch_key
        self.branch_up_first = branch_up_first

    # -- arithmetic --------------------------------------------------

    def to_expr(self) -> "LinExpr":
        """This variable as a one-term expression."""
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other) -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other) -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other) -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, other) -> "LinExpr":
        return self.to_expr() * other

    def __rmul__(self, other) -> "LinExpr":
        return self.to_expr() * other

    def __neg__(self) -> "LinExpr":
        return -self.to_expr()

    # -- comparisons build constraints -------------------------------

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Var):
            # Var == Var used in constraint context; identity tests
            # should use `is`.
            return self.to_expr() == other
        if isinstance(other, (LinExpr, numbers.Real)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(type(self)), self.index, self.name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "int" if self.is_integer else "cont"
        return f"Var({self.index}:{self.name}, {kind}, [{self.lb},{self.ub}])"


class LinExpr:
    """A sparse linear expression: ``sum(coef[i] * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(
        self, coeffs: "Mapping[int, float] | None" = None, constant: float = 0.0
    ) -> None:
        self.coeffs: "Dict[int, float]" = dict(coeffs or {})
        self.constant = float(constant)

    # -- helpers ------------------------------------------------------

    @staticmethod
    def _as_expr(value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, numbers.Real):
            return LinExpr({}, float(value))
        raise ModelError(
            f"cannot use {type(value).__name__} in a linear expression"
        )

    def copy(self) -> "LinExpr":
        """A shallow copy (coefficient dict duplicated)."""
        return LinExpr(dict(self.coeffs), self.constant)

    # -- arithmetic ---------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = self._as_expr(other)
        result = dict(self.coeffs)
        for idx, coef in other.coeffs.items():
            result[idx] = result.get(idx, 0.0) + coef
        return LinExpr(result, self.constant + other.constant)

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        return self.__add__(-self._as_expr(other))

    def __rsub__(self, other) -> "LinExpr":
        return (-self).__add__(other)

    def __neg__(self) -> "LinExpr":
        return LinExpr({i: -c for i, c in self.coeffs.items()}, -self.constant)

    def __mul__(self, other) -> "LinExpr":
        if not isinstance(other, numbers.Real):
            raise ModelError(
                "linear expressions can only be multiplied by numbers; "
                "products of variables must be linearized (see "
                "repro.core.constraints.linearize)"
            )
        scale = float(other)
        return LinExpr(
            {i: c * scale for i, c in self.coeffs.items()}, self.constant * scale
        )

    def __rmul__(self, other) -> "LinExpr":
        return self.__mul__(other)

    # -- comparisons build constraints --------------------------------

    def __le__(self, other):
        from repro.ilp.model import Constraint, Sense

        diff = self - self._as_expr(other)
        return Constraint(LinExpr(diff.coeffs, 0.0), Sense.LE, -diff.constant)

    def __ge__(self, other):
        from repro.ilp.model import Constraint, Sense

        diff = self - self._as_expr(other)
        return Constraint(LinExpr(diff.coeffs, 0.0), Sense.GE, -diff.constant)

    def __eq__(self, other):  # type: ignore[override]
        from repro.ilp.model import Constraint, Sense

        if not isinstance(other, (LinExpr, Var, numbers.Real)):
            return NotImplemented
        diff = self - self._as_expr(other)
        return Constraint(LinExpr(diff.coeffs, 0.0), Sense.EQ, -diff.constant)

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((tuple(sorted(self.coeffs.items())), self.constant))

    # -- evaluation ---------------------------------------------------

    def value(self, assignment: "Mapping[int, float]") -> float:
        """Evaluate the expression under ``{var_index: value}``."""
        total = self.constant
        for idx, coef in self.coeffs.items():
            total += coef * assignment[idx]
        return total

    def terms(self) -> "Iterable[Tuple[int, float]]":
        """Nonzero ``(var_index, coefficient)`` pairs, index-sorted."""
        return sorted(
            ((i, c) for i, c in self.coeffs.items() if c != 0.0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"{c:+g}*v{i}" for i, c in self.terms()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def lin_sum(items: "Iterable[Union[Var, LinExpr, Number]]") -> LinExpr:
    """Sum variables/expressions/numbers into one expression.

    Much faster than repeated ``+`` for long sums because coefficients
    accumulate into a single dict.
    """
    coeffs: "Dict[int, float]" = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Var):
            coeffs[item.index] = coeffs.get(item.index, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            for idx, coef in item.coeffs.items():
                coeffs[idx] = coeffs.get(idx, 0.0) + coef
            constant += item.constant
        elif isinstance(item, numbers.Real):
            constant += float(item)
        else:
            raise ModelError(f"cannot sum {type(item).__name__}")
    return LinExpr(coeffs, constant)
