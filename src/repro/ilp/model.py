"""The :class:`Model` container: variables, constraints, objective.

A model is built once by the formulation code and then handed to a
solver backend.  Besides the usual LP data it records, per variable,
the *branching metadata* the paper's variable-selection heuristic
needs: a priority group (``y`` before ``u`` before ``x`` before the
rest), an intra-group sort key (topological task priority, partition
index, ...), and the preferred first branch direction (the paper always
explores the 1-branch first).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._validation import require_identifier
from repro.errors import ModelError
from repro.ilp.expr import LinExpr, Var


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "="

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr (sense) rhs`` with constant-free expr."""

    expr: LinExpr
    sense: Sense
    rhs: float
    name: str = ""

    def named(self, name: str) -> "Constraint":
        """Return a copy of this constraint carrying ``name``."""
        return Constraint(self.expr, self.sense, self.rhs, name)

    def is_satisfied(self, assignment, tol: float = 1e-6) -> bool:
        """Whether the constraint holds under ``{var_index: value}``."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol


class Model:
    """A mixed 0-1 linear program under construction.

    The model is *minimizing* (matching the paper's eq. 14); callers
    needing maximization negate their objective.
    """

    def __init__(self, name: str = "model") -> None:
        require_identifier(name, ModelError, "model name")
        self.name = name
        self._vars: "List[Var]" = []
        self._names: "Dict[str, int]" = {}
        self._constraints: "List[Constraint]" = []
        self._objective: "Optional[LinExpr]" = None
        self._constraint_tags: "Dict[str, int]" = {}
        self._tag_of_row: "List[str]" = []
        self._sos1_groups: "List[List[int]]" = []

    # ------------------------------------------------------------------
    # variables

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = 1.0,
        integer: bool = False,
        branch_group: int = 99,
        branch_key: "Tuple" = (),
        branch_up_first: bool = True,
    ) -> Var:
        """Create a variable and return its handle.

        ``branch_group``/``branch_key``/``branch_up_first`` feed the
        branching rules; they do not affect the LP itself.
        """
        require_identifier(name, ModelError, "variable name")
        if name in self._names:
            raise ModelError(f"duplicate variable name: {name!r}")
        if not lb <= ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Var(
            index=len(self._vars),
            name=name,
            lb=float(lb),
            ub=float(ub),
            is_integer=bool(integer),
            branch_group=branch_group,
            branch_key=tuple(branch_key),
            branch_up_first=branch_up_first,
        )
        self._vars.append(var)
        self._names[name] = var.index
        return var

    def add_binary(self, name: str, **branch_kwargs) -> Var:
        """Create a 0-1 integer variable."""
        return self.add_var(name, 0.0, 1.0, integer=True, **branch_kwargs)

    def add_continuous01(self, name: str, **branch_kwargs) -> Var:
        """Create a continuous variable bounded to [0, 1].

        This is the Glover-linearization product-variable kind: the
        paper's ``z`` (and our ``w``, ``o``, ``c`` relaxations) are
        real-valued in [0, 1] yet take integral values in any solution
        where the fundamental 0-1 variables are integral.
        """
        return self.add_var(name, 0.0, 1.0, integer=False, **branch_kwargs)

    @property
    def variables(self) -> "Tuple[Var, ...]":
        """All variables in index order."""
        return tuple(self._vars)

    @property
    def num_vars(self) -> int:
        """Number of variables."""
        return len(self._vars)

    @property
    def num_integer_vars(self) -> int:
        """Number of integer (0-1) variables."""
        return sum(1 for v in self._vars if v.is_integer)

    def var_by_name(self, name: str) -> Var:
        """Look up a variable handle by name."""
        try:
            return self._vars[self._names[name]]
        except KeyError:
            raise ModelError(f"model has no variable named {name!r}") from None

    def integer_indices(self) -> "List[int]":
        """Indices of all integer variables."""
        return [v.index for v in self._vars if v.is_integer]

    def add_sos1_group(self, variables: "Sequence[Var]") -> None:
        """Declare that at most one of ``variables`` can be 1.

        This is *metadata* for branch and bound (setting one member to
        1 lets the search fix the others to 0 immediately); the actual
        at-most/exactly-one constraint must still be added normally.
        The formulation registers each task's ``y[t, *]`` row this way.
        """
        indices = []
        for var in variables:
            if not isinstance(var, Var) or not 0 <= var.index < len(self._vars):
                raise ModelError("sos1 group must contain this model's variables")
            indices.append(var.index)
        if len(indices) >= 2:
            self._sos1_groups.append(indices)

    @property
    def sos1_groups(self) -> "Tuple[Tuple[int, ...], ...]":
        """Registered SOS1 groups as tuples of variable indices."""
        return tuple(tuple(g) for g in self._sos1_groups)

    # ------------------------------------------------------------------
    # constraints

    def add(self, constraint: Constraint, name: str = "", tag: str = "") -> Constraint:
        """Add a constraint (built via expression comparisons).

        ``tag`` groups constraints by family ("eq2-temporal-order", ...)
        for the statistics the paper's tables report.
        """
        if not isinstance(constraint, Constraint):
            raise ModelError(
                f"expected Constraint (use <=, >=, == on expressions), got "
                f"{type(constraint).__name__}"
            )
        for idx in constraint.expr.coeffs:
            if not 0 <= idx < len(self._vars):
                raise ModelError(
                    f"constraint references unknown variable index {idx}"
                )
        if name:
            constraint = constraint.named(name)
        self._constraints.append(constraint)
        self._tag_of_row.append(tag)
        if tag:
            self._constraint_tags[tag] = self._constraint_tags.get(tag, 0) + 1
        return constraint

    @property
    def constraints(self) -> "Tuple[Constraint, ...]":
        """All constraints in insertion order."""
        return tuple(self._constraints)

    @property
    def constraint_tags(self) -> "Tuple[str, ...]":
        """Family tag of every constraint, in insertion order.

        Untagged rows carry ``""``.  The static analyzer uses this to
        attribute each diagnostic to a constraint family.
        """
        return tuple(self._tag_of_row)

    @property
    def num_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    def constraint_counts_by_tag(self) -> "Dict[str, int]":
        """Constraint counts per family tag (for model-size reports)."""
        return dict(self._constraint_tags)

    def integer_counts_by_tag(self) -> "Dict[str, int]":
        """Distinct integer variables referenced per constraint family.

        Shares the tag vocabulary with :meth:`constraint_counts_by_tag`
        so model-size reports and analyzer diagnostics agree on names.
        """
        seen: "Dict[str, set]" = {}
        for constraint, tag in zip(self._constraints, self._tag_of_row):
            if not tag:
                continue
            bucket = seen.setdefault(tag, set())
            for idx, coef in constraint.expr.coeffs.items():
                if coef != 0.0 and self._vars[idx].is_integer:
                    bucket.add(idx)
        return {tag: len(indices) for tag, indices in sorted(seen.items())}

    @property
    def num_nonzeros(self) -> int:
        """Nonzero constraint-matrix coefficients across all rows."""
        return sum(
            1
            for constraint in self._constraints
            for coef in constraint.expr.coeffs.values()
            if coef != 0.0
        )

    # ------------------------------------------------------------------
    # objective

    def set_objective(self, expr: "LinExpr | Var") -> None:
        """Set the (minimization) objective; may be set only once."""
        if self._objective is not None:
            raise ModelError("objective already set")
        if isinstance(expr, Var):
            expr = expr.to_expr()
        if not isinstance(expr, LinExpr):
            raise ModelError(
                f"objective must be a linear expression, got {type(expr).__name__}"
            )
        self._objective = expr

    @property
    def objective(self) -> LinExpr:
        """The objective expression (zero expression if never set)."""
        return self._objective if self._objective is not None else LinExpr()

    # ------------------------------------------------------------------
    # solution utilities

    def check_feasible(
        self, assignment: "Dict[int, float]", tol: float = 1e-6
    ) -> "List[Constraint]":
        """Return all constraints violated by ``assignment``.

        Bounds and integrality of integer variables are checked too; a
        violated bound is reported as a synthetic constraint.
        """
        violated: "List[Constraint]" = []
        for var in self._vars:
            value = assignment[var.index]
            if value < var.lb - tol or value > var.ub + tol:
                violated.append(
                    Constraint(
                        LinExpr({var.index: 1.0}),
                        Sense.LE,
                        var.ub,
                        name=f"bounds[{var.name}]",
                    )
                )
            elif var.is_integer and abs(value - round(value)) > tol:
                violated.append(
                    Constraint(
                        LinExpr({var.index: 1.0}),
                        Sense.EQ,
                        round(value),
                        name=f"integrality[{var.name}]",
                    )
                )
        for constraint in self._constraints:
            if not constraint.is_satisfied(assignment, tol):
                violated.append(constraint)
        return violated

    def objective_value(self, assignment: "Dict[int, float]") -> float:
        """Evaluate the objective under ``{var_index: value}``."""
        return self.objective.value(assignment)

    def stats(self) -> "Dict[str, object]":
        """Model-size statistics matching the paper's Var/Const columns.

        Beyond the paper's counts this reports the constraint-matrix
        ``nonzeros`` and ``density`` (nonzeros over rows*cols), the
        vocabulary the static analyzer's reduction counters use.
        """
        nonzeros = self.num_nonzeros
        cells = self.num_vars * self.num_constraints
        return {
            "vars": self.num_vars,
            "integer_vars": self.num_integer_vars,
            "continuous_vars": self.num_vars - self.num_integer_vars,
            "constraints": self.num_constraints,
            "nonzeros": nonzeros,
            "density": (nonzeros / cells) if cells else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"[{self.num_integer_vars} int], constraints={self.num_constraints})"
        )
