"""Export models in CPLEX LP text format.

Useful for eyeballing a formulation (the LP format is close to the
paper's own equation notation) and for feeding the models to external
solvers — including, fittingly, modern descendants of the ``lp_solve``
code the paper used.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.ilp.model import Model, Sense


def write_lp_format(model: Model, path: "str | Path | None" = None) -> str:
    """Render ``model`` in LP format; optionally write it to ``path``.

    Returns the LP text either way.
    """
    lines: "List[str]" = [f"\\ Model: {model.name}", "Minimize", " obj:"]
    lines[-1] += _render_expr(model, model.objective.coeffs) or " 0"

    lines.append("Subject To")
    for idx, constraint in enumerate(model.constraints):
        name = constraint.name or f"c{idx + 1}"
        body = _render_expr(model, constraint.expr.coeffs) or " 0"
        sense = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}[constraint.sense]
        lines.append(f" {name}:{body} {sense} {_num(constraint.rhs)}")

    lines.append("Bounds")
    for var in model.variables:
        if var.lb == 0.0 and var.ub == 1.0:
            continue  # default handled by Binaries/implicit bounds
        lines.append(f" {_num(var.lb)} <= {var.name} <= {_num(var.ub)}")

    binaries = [v.name for v in model.variables if v.is_integer]
    if binaries:
        lines.append("Binaries")
        for chunk_start in range(0, len(binaries), 8):
            lines.append(" " + " ".join(binaries[chunk_start : chunk_start + 8]))

    continuous01 = [
        v for v in model.variables if not v.is_integer and (v.lb, v.ub) == (0.0, 1.0)
    ]
    if continuous01:
        lines.append("\\ Continuous [0,1] variables (Glover linearization):")
        lines.append("Bounds")
        for var in continuous01:
            lines.append(f" 0 <= {var.name} <= 1")

    lines.append("End")
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def _render_expr(model: Model, coeffs) -> str:
    parts: "List[str]" = []
    for idx in sorted(coeffs):
        coef = coeffs[idx]
        if coef == 0.0:
            continue
        name = model.variables[idx].name
        sign = "+" if coef >= 0 else "-"
        magnitude = abs(coef)
        if magnitude == 1.0:
            parts.append(f" {sign} {name}")
        else:
            parts.append(f" {sign} {_num(magnitude)} {name}")
    return "".join(parts)


def _num(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
