"""Warm-started incremental LP kernel for the branch-and-bound hot loop.

Branch-and-bound nodes are thousands of *near-identical* LPs: the same
matrices with only variable-bound changes.  The historical per-node
path (:func:`~repro.ilp.scipy_backend.solve_lp_scipy`) paid full model
construction on every call — Python bound-pair lists, fresh result
dicts — so LP time dominated nodes/sec.  This module amortizes all of
that:

* **Persistent model** — :class:`IncrementalLPSolver` binds to one
  compiled :class:`~repro.ilp.standard_form.StandardForm` and keeps
  every derived buffer alive across calls.  With ``highspy``
  importable, the HiGHS model is built *once* and each node mutates
  column bounds only, so HiGHS's dual simplex warm-starts from the
  parent basis (the classic B&B re-solve trick); without it, the
  kernel falls back transparently to ``scipy.optimize.linprog`` fed a
  preallocated ``(n, 2)`` bounds array — nothing new is required to
  run.
* **Node-solve LRU cache** — results are memoized by a fingerprint of
  the effective bounds, so retries, rescue dives, chaos second-opinion
  re-solves, and checkpoint-resume replays never pay for the same LP
  twice.  Only terminal verdicts (OPTIMAL / INFEASIBLE / UNBOUNDED)
  are cached; faults always re-execute.
* **Array-backed results** — values come back as a
  :class:`~repro.ilp.solution.ValueVector` over the solver's own
  vector (no per-node ``{idx: float}`` allocation), and OPTIMAL
  results carry the optimal basis' ``reduced_costs`` plus the row
  duals (``dual_ub`` / ``dual_eq``) so branch and bound can do
  reduced-cost variable fixing and emit proof-log certificates.  Both
  engines return the same dual contract — including after a permanent
  highs→linprog demotion, which re-solves the crashing node on the
  fallback path rather than returning a dual-less result.

The kernel is a drop-in LP backend (same
``(form, lb_override, ub_override) -> LPResult`` contract), so it
slots into :class:`~repro.ilp.resilience.ResilientLPBackend` chains
unchanged.  :meth:`kernel_telemetry` reports the kernel name,
warm-start hits, and cache hit rate for the
``repro.solve_telemetry/v7`` artifact.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError, TransientSolverError
from repro.ilp.scipy_backend import _row_marginals
from repro.ilp.solution import LPResult, SolveStatus, ValueVector
from repro.ilp.standard_form import StandardForm

#: Default node-solve cache capacity (entries, not bytes).  A cached
#: entry costs roughly ``3 * 8 * num_vars`` bytes (two bound snapshots
#: in the key plus the value vector), so the default stays in the
#: tens of megabytes even on the Table-4 models.
DEFAULT_CACHE_SIZE = 1024

_highspy = None
_highspy_checked = False


def have_highspy() -> bool:
    """Whether the optional ``highspy`` warm-start backend is importable."""
    return _load_highspy() is not None


def _load_highspy():
    global _highspy, _highspy_checked
    if not _highspy_checked:
        _highspy_checked = True
        try:  # pragma: no cover - exercised only where highspy exists
            import highspy  # noqa: PLC0415

            _highspy = highspy
        except Exception:
            _highspy = None
    return _highspy


class IncrementalLPSolver:
    """Persistent-model, warm-started, caching LP relaxation solver.

    Parameters
    ----------
    form:
        Standard form to bind to immediately; when omitted, the kernel
        binds lazily on the first call (and transparently re-binds if a
        different form is ever passed — each bind resets the model,
        buffers, and cache).
    cache_size:
        LRU node-solve cache capacity; 0 disables caching.
    use_highs:
        Force (True) or forbid (False) the ``highspy`` path; ``None``
        (default) auto-detects and falls back to ``linprog`` when the
        import or model build fails.
    """

    def __init__(
        self,
        form: "Optional[StandardForm]" = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        use_highs: "Optional[bool]" = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if use_highs is True and _load_highspy() is None:
            raise SolverError(
                "use_highs=True but highspy is not importable; install it "
                "or let use_highs=None auto-detect the linprog fallback"
            )
        self.cache_size = int(cache_size)
        self._use_highs = use_highs
        self._form: "Optional[StandardForm]" = None
        self._bounds_buf: "Optional[np.ndarray]" = None
        self._cache: "OrderedDict[Tuple[bytes, bytes], LPResult]" = OrderedDict()
        self._highs = None
        self._highs_cols: "Optional[np.ndarray]" = None
        self._have_basis = False
        self._demoted_reason: "Optional[str]" = None
        # Telemetry counters.
        self.calls = 0
        self.lp_solves = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.warm_start_hits = 0
        self.rebinds = 0
        if form is not None:
            self._bind(form)

    # ------------------------------------------------------------------

    @property
    def kernel_name(self) -> str:
        """Which engine actually solves: highs warm-start or linprog."""
        if self._highs is not None:
            return "incremental-highs"
        return "incremental-linprog"

    @property
    def form(self) -> "Optional[StandardForm]":
        return self._form

    def _bind(self, form: StandardForm) -> None:
        """(Re)compile per-form state; called once per model in practice."""
        self._form = form
        self._bounds_buf = np.empty((form.num_vars, 2), dtype=float)
        self._cache.clear()
        self._highs = None
        self._have_basis = False
        self.rebinds += 1
        if self._use_highs is not False and _load_highspy() is not None:
            try:  # pragma: no cover - needs highspy
                self._build_highs_model(form)
            except Exception as exc:  # pragma: no cover - needs highspy
                self._highs = None
                self._demoted_reason = f"highs model build failed: {exc}"
        if self._use_highs is True and self._highs is None:
            raise SolverError(
                "use_highs=True but highspy is unavailable"
                + (f" ({self._demoted_reason})" if self._demoted_reason else "")
            )

    def _build_highs_model(self, form: StandardForm) -> None:  # pragma: no cover
        """Compile ``form`` into a persistent HiGHS model (once).

        Inequalities get ``(-inf, b_ub]`` row bounds, equalities
        ``[b_eq, b_eq]``; the simplex solver is pinned so every re-solve
        after a bounds mutation warm-starts from the retained basis.
        """
        highspy = _load_highspy()
        h = highspy.Highs()
        h.setOptionValue("output_flag", False)
        # Warm starting needs a basis; keep HiGHS on (dual) simplex.
        h.setOptionValue("solver", "simplex")
        n = form.num_vars
        indptr, indices, data, row_lower, row_upper = _stack_rows(form)
        lp = highspy.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = int(row_lower.shape[0])
        lp.col_cost_ = np.asarray(form.c, dtype=float)
        lp.col_lower_ = np.asarray(form.lb, dtype=float)
        lp.col_upper_ = np.asarray(form.ub, dtype=float)
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.a_matrix_.format_ = highspy.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = indptr
        lp.a_matrix_.index_ = indices
        lp.a_matrix_.value_ = data
        status = h.passModel(lp)
        if status != highspy.HighsStatus.kOk:
            raise SolverError(f"highspy passModel returned {status}")
        self._highs = h
        self._highs_cols = np.arange(n, dtype=np.int32)

    # ------------------------------------------------------------------

    def __call__(
        self,
        form: StandardForm,
        lb_override: "Optional[np.ndarray]" = None,
        ub_override: "Optional[np.ndarray]" = None,
    ) -> LPResult:
        """Solve the LP relaxation of ``form`` with bound overrides.

        Same contract as
        :func:`~repro.ilp.scipy_backend.solve_lp_scipy`: integrality is
        ignored; the overrides carry the branching fixings.
        """
        if form is not self._form:
            self._bind(form)
        self.calls += 1
        lb = form.lb if lb_override is None else lb_override
        ub = form.ub if ub_override is None else ub_override
        if np.any(lb > ub + 1e-12):
            # Contradictory fixation: provably infeasible, no LP needed
            # (and no cache entry — the check is cheaper than a lookup).
            return LPResult(status=SolveStatus.INFEASIBLE)

        key: "Optional[Tuple[bytes, bytes]]" = None
        if self.cache_size:
            key = (
                np.ascontiguousarray(lb, dtype=float).tobytes(),
                np.ascontiguousarray(ub, dtype=float).tobytes(),
            )
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1

        result = self._solve(lb, ub)
        if key is not None:
            self._cache[key] = result
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                self.cache_evictions += 1
        return result

    # ------------------------------------------------------------------

    def _solve(self, lb: "np.ndarray", ub: "np.ndarray") -> LPResult:
        self.lp_solves += 1
        if self._highs is not None:  # pragma: no cover - needs highspy
            try:
                return self._solve_highs(lb, ub)
            except SolverError:
                raise
            except Exception as exc:
                # Any binding-level surprise demotes the kernel for the
                # rest of the run instead of killing the search.
                self._highs = None
                self._have_basis = False
                self._demoted_reason = f"highs solve failed: {exc}"
        return self._solve_linprog(lb, ub)

    def _solve_linprog(self, lb: "np.ndarray", ub: "np.ndarray") -> LPResult:
        """The dependency-free path: linprog on the persistent buffers."""
        form = self._form
        assert form is not None and self._bounds_buf is not None
        self._bounds_buf[:, 0] = lb
        self._bounds_buf[:, 1] = ub
        result = linprog(
            c=form.c,
            A_ub=form.a_ub if form.a_ub.shape[0] else None,
            b_ub=form.b_ub if form.a_ub.shape[0] else None,
            A_eq=form.a_eq if form.a_eq.shape[0] else None,
            b_eq=form.b_eq if form.a_eq.shape[0] else None,
            bounds=self._bounds_buf,
            method="highs",
        )
        if result.status == 0:
            return LPResult(
                status=SolveStatus.OPTIMAL,
                objective=float(result.fun),
                values=ValueVector(result.x),
                reduced_costs=_linprog_reduced_costs(result),
                dual_ub=_row_marginals(result, "ineqlin", form.b_ub.shape[0]),
                dual_eq=_row_marginals(result, "eqlin", form.b_eq.shape[0]),
            )
        if result.status == 2:
            return LPResult(status=SolveStatus.INFEASIBLE)
        if result.status == 3:
            return LPResult(status=SolveStatus.UNBOUNDED)
        if result.status in (1, 4):
            raise TransientSolverError(
                f"linprog failed with status {result.status}: {result.message}",
                backend=self.kernel_name,
                raw_status=int(result.status),
            )
        raise SolverError(
            f"linprog failed with status {result.status}: {result.message}"
        )

    def _solve_highs(self, lb, ub) -> LPResult:  # pragma: no cover - needs highspy
        """Mutate column bounds on the persistent model and re-run.

        HiGHS retains the previous optimal basis on the model, so the
        dual simplex re-solve after a bounds-only change warm-starts
        from the parent node's basis.
        """
        highspy = _load_highspy()
        h = self._highs
        n = int(self._highs_cols.shape[0])
        h.changeColsBounds(
            n,
            self._highs_cols,
            np.asarray(lb, dtype=float),
            np.asarray(ub, dtype=float),
        )
        if self._have_basis:
            self.warm_start_hits += 1
        run_status = h.run()
        if run_status != highspy.HighsStatus.kOk:
            self._have_basis = False
            raise TransientSolverError(
                f"highspy run returned {run_status}",
                backend=self.kernel_name,
                raw_status=-1,
            )
        model_status = h.getModelStatus()
        if model_status == highspy.HighsModelStatus.kOptimal:
            self._have_basis = True
            solution = h.getSolution()
            x = np.asarray(solution.col_value, dtype=float)
            # Row duals come back stacked in _stack_rows order
            # (inequalities first, then equalities): split them so
            # proof logging sees the same (dual_ub, dual_eq) contract
            # as the linprog path.
            dual_ub = dual_eq = None
            row_dual = getattr(solution, "row_dual", None)
            if row_dual is not None:
                form = self._form
                m_ub = int(form.b_ub.shape[0])
                m_eq = int(form.b_eq.shape[0])
                stacked = np.asarray(row_dual, dtype=float)
                if stacked.shape[0] == m_ub + m_eq and np.all(
                    np.isfinite(stacked)
                ):
                    dual_ub = stacked[:m_ub]
                    dual_eq = stacked[m_ub:]
            return LPResult(
                status=SolveStatus.OPTIMAL,
                objective=float(h.getInfo().objective_function_value),
                values=ValueVector(x),
                reduced_costs=np.asarray(solution.col_dual, dtype=float),
                dual_ub=dual_ub,
                dual_eq=dual_eq,
            )
        if model_status == highspy.HighsModelStatus.kInfeasible:
            self._have_basis = True
            return LPResult(status=SolveStatus.INFEASIBLE)
        if model_status == highspy.HighsModelStatus.kUnbounded:
            self._have_basis = True
            return LPResult(status=SolveStatus.UNBOUNDED)
        self._have_basis = False
        raise TransientSolverError(
            f"highspy model status {model_status}",
            backend=self.kernel_name,
            raw_status=-1,
        )

    # ------------------------------------------------------------------

    def kernel_telemetry(self) -> "Dict[str, object]":
        """Counters for the ``solve.kernel`` telemetry block (v4)."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "name": self.kernel_name,
            "highs": self._highs is not None,
            "calls": self.calls,
            "lp_solves": self.lp_solves,
            "cache_size": self.cache_size,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
            "warm_start_hits": self.warm_start_hits,
            "rebinds": self.rebinds,
            "demoted": self._demoted_reason,
        }


def _linprog_reduced_costs(result) -> "Optional[np.ndarray]":
    """Reduced costs from a ``linprog(method='highs')`` result.

    HiGHS reports the variable-bound duals split by side
    (``lower.marginals`` >= 0 for at-lower variables,
    ``upper.marginals`` <= 0 for at-upper); at most one side is nonzero
    per variable, so their sum is the signed reduced cost.  Older scipy
    builds without marginals just yield ``None`` (fixing is skipped).
    """
    try:
        lower = result.lower.marginals
        upper = result.upper.marginals
    except AttributeError:
        return None
    if lower is None or upper is None:
        return None
    return np.asarray(lower, dtype=float) + np.asarray(upper, dtype=float)


def _stack_rows(form: StandardForm):  # pragma: no cover - needs highspy
    """Stack a_ub / a_eq into one rowwise CSR triple plus row bounds."""
    from scipy import sparse

    blocks = []
    if form.a_ub.shape[0]:
        blocks.append(form.a_ub)
    if form.a_eq.shape[0]:
        blocks.append(form.a_eq)
    if blocks:
        stacked = sparse.vstack(blocks, format="csr")
        indptr = np.asarray(stacked.indptr, dtype=np.int32)
        indices = np.asarray(stacked.indices, dtype=np.int32)
        data = np.asarray(stacked.data, dtype=float)
    else:
        indptr = np.zeros(1, dtype=np.int32)
        indices = np.zeros(0, dtype=np.int32)
        data = np.zeros(0, dtype=float)
    m_ub = form.a_ub.shape[0]
    m_eq = form.a_eq.shape[0]
    row_lower = np.concatenate(
        [np.full(m_ub, -np.inf), np.asarray(form.b_eq, dtype=float)]
    )
    row_upper = np.concatenate(
        [np.asarray(form.b_ub, dtype=float), np.asarray(form.b_eq, dtype=float)]
    )
    return indptr, indices, data, row_lower, row_upper
