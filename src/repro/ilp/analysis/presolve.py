"""Presolve: shrink a model before any LP is solved.

The pass iterates four classic MILP reductions to a fixpoint:

* **bound propagation** — each row's minimum/maximum activity under
  the current bounds implies tighter bounds on its variables
  (rounded inward for integer variables);
* **variable fixing** — singleton rows become bounds, forcing rows
  (activity range touching the rhs) pin every free variable in them;
* **coefficient tightening** — an LE row's binary coefficients are
  reduced to the largest values that leave all 0-1 points unchanged,
  which strictly tightens the LP relaxation;
* **row removal** — rows proven redundant by activity bounds, by a
  duplicate/dominating twin, or by substitution of an equality row
  they share a variable with (this is how the base model's eq. 4
  ``w >= v`` rows are detected as implied by eq. 5 ``sum v == w``,
  and how the Section-6 tightening cuts are recognized when the
  bounds already subsume them).

A bound contradiction or a row with no satisfiable point yields an
:class:`~repro.ilp.analysis.diagnostics.InfeasibilityCertificate`
instead of a reduced model — the certificate path never solves an LP.

Two output modes (``PresolveOptions.eliminate``):

* ``eliminate=False`` (what the solver integration uses) keeps the
  full variable set — fixings become ``lb == ub`` bounds — so node
  probers, leaf solvers and branching metadata that index variables
  by position keep working unchanged; the :class:`ReductionMap` is
  then the identity.
* ``eliminate=True`` (the standalone analyzer default) removes fixed
  variables from the model entirely; the :class:`ReductionMap`
  records their values and the old-to-new index mapping so
  :meth:`ReductionMap.lift` restores a solution of the original
  model, and ``objective_offset`` restores its objective value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ilp.analysis.diagnostics import InfeasibilityCertificate
from repro.ilp.expr import LinExpr
from repro.ilp.model import Constraint, Model, Sense

#: Support-size caps keeping the equality-substitution scan linear-ish.
_SUBST_INEQ_SUPPORT = 32
_SUBST_EQ_SUPPORT = 64


@dataclass(frozen=True)
class PresolveOptions:
    """Knobs of the presolve pass.

    ``eliminate`` selects the output mode (see module docstring);
    ``max_rounds`` caps the fixpoint iteration; ``tighten_coefficients``
    and ``detect_implied`` gate the two more expensive reductions;
    ``feas_tol`` is the absolute feasibility/rounding tolerance.
    """

    eliminate: bool = True
    max_rounds: int = 10
    tighten_coefficients: bool = True
    detect_implied: bool = True
    feas_tol: float = 1e-9


@dataclass
class PresolveStats:
    """Reduction counters of one presolve run (telemetry-ready)."""

    rounds: int = 0
    vars_fixed: int = 0
    bounds_tightened: int = 0
    coeffs_tightened: int = 0
    rows_removed: int = 0
    rows_removed_by_reason: "Dict[str, int]" = field(default_factory=dict)
    vars_before: int = 0
    vars_after: int = 0
    rows_before: int = 0
    rows_after: int = 0
    nonzeros_before: int = 0
    nonzeros_after: int = 0

    def note_removal(self, reason: str) -> None:
        self.rows_removed += 1
        self.rows_removed_by_reason[reason] = (
            self.rows_removed_by_reason.get(reason, 0) + 1
        )

    def as_dict(self) -> "Dict[str, object]":
        return {
            "rounds": self.rounds,
            "vars_fixed": self.vars_fixed,
            "bounds_tightened": self.bounds_tightened,
            "coeffs_tightened": self.coeffs_tightened,
            "rows_removed": self.rows_removed,
            "rows_removed_by_reason": dict(self.rows_removed_by_reason),
            "vars_before": self.vars_before,
            "vars_after": self.vars_after,
            "rows_before": self.rows_before,
            "rows_after": self.rows_after,
            "nonzeros_before": self.nonzeros_before,
            "nonzeros_after": self.nonzeros_after,
        }


@dataclass(frozen=True)
class ReductionMap:
    """How to translate reduced-model solutions back to the original.

    ``index_map`` maps original variable indices to reduced indices
    (identity in non-eliminating mode); ``fixed_values`` holds the
    eliminated variables; ``objective_offset`` is the objective
    contribution of the eliminated variables.
    """

    num_original_vars: int
    index_map: "Mapping[int, int]"
    fixed_values: "Mapping[int, float]"
    objective_offset: float = 0.0

    def lift(self, values: "Mapping[int, float]") -> "Dict[int, float]":
        """A reduced-model solution as an original-model assignment."""
        lifted: "Dict[int, float]" = dict(self.fixed_values)
        for orig, new in self.index_map.items():
            lifted[orig] = values[new]
        return lifted

    def lift_objective(self, reduced_objective: float) -> float:
        """The original objective value of a reduced-model optimum."""
        return reduced_objective + self.objective_offset


@dataclass(frozen=True)
class PresolveResult:
    """Outcome of :func:`presolve`.

    Either ``model``/``map`` are set (feasibility not disproved) or
    ``certificate`` is set (the model is proven infeasible without a
    single LP call); ``stats`` is always present.
    """

    stats: PresolveStats
    model: "Optional[Model]" = None
    map: "Optional[ReductionMap]" = None
    certificate: "Optional[InfeasibilityCertificate]" = None

    @property
    def is_infeasible(self) -> bool:
        return self.certificate is not None


class _Row:
    """One working constraint, normalized to LE or EQ."""

    __slots__ = ("coeffs", "sense", "rhs", "tag", "name", "alive")

    def __init__(self, coeffs, sense, rhs, tag, name):
        self.coeffs: "Dict[int, float]" = coeffs
        self.sense: Sense = sense
        self.rhs: float = rhs
        self.tag: str = tag
        self.name: str = name
        self.alive: bool = True

    def label(self, index: int) -> str:
        return self.name if self.name else f"row#{index}"


class _Infeasible(Exception):
    """Internal control flow: carries the certificate."""

    def __init__(self, certificate: InfeasibilityCertificate) -> None:
        super().__init__(certificate.reason)
        self.certificate = certificate


def presolve(model: Model, options: "Optional[PresolveOptions]" = None) -> PresolveResult:
    """Run the presolve pass on ``model`` (which is left untouched)."""
    opts = options if options is not None else PresolveOptions()
    engine = _Engine(model, opts)
    try:
        engine.run()
    except _Infeasible as stop:
        engine.stats.rows_after = sum(1 for r in engine.rows if r.alive)
        return PresolveResult(stats=engine.stats, certificate=stop.certificate)
    return engine.build_result()


class _Engine:
    """The mutable working state of one presolve run."""

    def __init__(self, model: Model, opts: PresolveOptions) -> None:
        self.model = model
        self.opts = opts
        self.tol = opts.feas_tol
        self.stats = PresolveStats(
            vars_before=model.num_vars,
            rows_before=model.num_constraints,
            nonzeros_before=model.num_nonzeros,
        )
        self.lb: "List[float]" = [v.lb for v in model.variables]
        self.ub: "List[float]" = [v.ub for v in model.variables]
        self.is_int: "List[bool]" = [v.is_integer for v in model.variables]
        self.rows: "List[_Row]" = []
        tags = model.constraint_tags
        for con, tag in zip(model.constraints, tags):
            coeffs = {i: c for i, c in con.expr.coeffs.items() if c != 0.0}
            if con.sense is Sense.GE:
                coeffs = {i: -c for i, c in coeffs.items()}
                self.rows.append(_Row(coeffs, Sense.LE, -con.rhs, tag, con.name))
            else:
                self.rows.append(_Row(coeffs, con.sense, con.rhs, tag, con.name))

    # ------------------------------------------------------------------
    # driver

    def run(self) -> None:
        for round_no in range(1, self.opts.max_rounds + 1):
            self.stats.rounds = round_no
            changed = self._propagate_pass()
            if self.opts.tighten_coefficients:
                changed |= self._tighten_pass()
            changed |= self._duplicate_pass()
            if self.opts.detect_implied:
                changed |= self._implied_pass()
            if not changed:
                break

    # ------------------------------------------------------------------
    # activity helpers

    def _is_fixed(self, idx: int) -> bool:
        return self.ub[idx] - self.lb[idx] <= self.tol

    def _contrib_range(self, idx: int, coef: float) -> "Tuple[float, float]":
        a = coef * self.lb[idx]
        b = coef * self.ub[idx]
        return (a, b) if a <= b else (b, a)

    def _activity(self, row: _Row) -> "Tuple[float, float]":
        lo = hi = 0.0
        for idx, coef in row.coeffs.items():
            a, b = self._contrib_range(idx, coef)
            lo += a
            hi += b
        return lo, hi

    def _free_support(self, row: _Row) -> "List[int]":
        return [idx for idx in row.coeffs if not self._is_fixed(idx)]

    def _fixed_sum(self, row: _Row) -> float:
        return sum(
            coef * self.lb[idx]
            for idx, coef in row.coeffs.items()
            if self._is_fixed(idx)
        )

    # ------------------------------------------------------------------
    # bound updates

    def _set_ub(self, idx: int, value: float) -> bool:
        if self.is_int[idx]:
            value = math.floor(value + 1e-6)
        if value >= self.ub[idx] - self.tol:
            return False
        if value < self.lb[idx] - self.tol:
            var = self.model.variables[idx]
            raise _Infeasible(InfeasibilityCertificate(
                code="bound-contradiction",
                reason=(
                    f"propagation forces {var.name} <= {value:g} while its "
                    f"lower bound is {self.lb[idx]:g}"
                ),
                details={"variable": var.name, "implied_ub": value,
                         "lb": self.lb[idx]},
            ))
        was_free = not self._is_fixed(idx)
        self.ub[idx] = max(value, self.lb[idx])
        self.stats.bounds_tightened += 1
        if was_free and self._is_fixed(idx):
            self.stats.vars_fixed += 1
        return True

    def _set_lb(self, idx: int, value: float) -> bool:
        if self.is_int[idx]:
            value = math.ceil(value - 1e-6)
        if value <= self.lb[idx] + self.tol:
            return False
        if value > self.ub[idx] + self.tol:
            var = self.model.variables[idx]
            raise _Infeasible(InfeasibilityCertificate(
                code="bound-contradiction",
                reason=(
                    f"propagation forces {var.name} >= {value:g} while its "
                    f"upper bound is {self.ub[idx]:g}"
                ),
                details={"variable": var.name, "implied_lb": value,
                         "ub": self.ub[idx]},
            ))
        was_free = not self._is_fixed(idx)
        self.lb[idx] = min(value, self.ub[idx])
        self.stats.bounds_tightened += 1
        if was_free and self._is_fixed(idx):
            self.stats.vars_fixed += 1
        return True

    def _fix(self, idx: int, value: float) -> bool:
        changed = False
        if value > self.lb[idx] + self.tol:
            changed |= self._set_lb(idx, value)
        if value < self.ub[idx] - self.tol:
            changed |= self._set_ub(idx, value)
        return changed

    # ------------------------------------------------------------------
    # the propagation / fixing / removal pass

    def _row_infeasible(self, row: _Row, index: int, lo: float, hi: float) -> _Infeasible:
        sense = "<=" if row.sense is Sense.LE else "="
        return _Infeasible(InfeasibilityCertificate(
            code="row-infeasible",
            reason=(
                f"constraint {row.label(index)} requires activity {sense} "
                f"{row.rhs:g} but the variable bounds only allow "
                f"[{lo:g}, {hi:g}]"
            ),
            details={"row": row.label(index), "tag": row.tag, "rhs": row.rhs,
                     "min_activity": lo, "max_activity": hi},
        ))

    def _propagate_pass(self) -> bool:
        changed = False
        tol = self.tol
        for index, row in enumerate(self.rows):
            if not row.alive:
                continue
            lo, hi = self._activity(row)
            if row.sense is Sense.LE:
                if lo > row.rhs + max(tol, 1e-7):
                    raise self._row_infeasible(row, index, lo, hi)
                if hi <= row.rhs + tol:
                    row.alive = False
                    self.stats.note_removal("redundant")
                    changed = True
                    continue
                if lo >= row.rhs - tol:
                    # Forcing: only the minimum-activity point fits.
                    for idx in self._free_support(row):
                        bound = self.lb[idx] if row.coeffs[idx] > 0 else self.ub[idx]
                        changed |= self._fix(idx, bound)
                    row.alive = False
                    self.stats.note_removal("forcing")
                    changed = True
                    continue
                changed |= self._propagate_le(row)
            else:  # EQ
                if lo > row.rhs + max(tol, 1e-7) or hi < row.rhs - max(tol, 1e-7):
                    raise self._row_infeasible(row, index, lo, hi)
                free = self._free_support(row)
                if not free:
                    row.alive = False
                    self.stats.note_removal("redundant")
                    changed = True
                    continue
                if len(free) == 1:
                    idx = free[0]
                    coef = row.coeffs[idx]
                    value = (row.rhs - self._fixed_sum(row)) / coef
                    if self.is_int[idx] and abs(value - round(value)) > 1e-6:
                        var = self.model.variables[idx]
                        raise _Infeasible(InfeasibilityCertificate(
                            code="row-infeasible",
                            reason=(
                                f"constraint {row.label(index)} forces integer "
                                f"variable {var.name} to the fractional value "
                                f"{value:g}"
                            ),
                            details={"row": row.label(index), "tag": row.tag,
                                     "variable": var.name, "value": value},
                        ))
                    changed |= self._fix(idx, round(value) if self.is_int[idx] else value)
                    row.alive = False
                    self.stats.note_removal("singleton")
                    changed = True
                    continue
                if hi <= row.rhs + tol:
                    # Only the maximum-activity point attains the rhs.
                    for idx in free:
                        bound = self.ub[idx] if row.coeffs[idx] > 0 else self.lb[idx]
                        changed |= self._fix(idx, bound)
                    row.alive = False
                    self.stats.note_removal("forcing")
                    changed = True
                    continue
                if lo >= row.rhs - tol:
                    for idx in free:
                        bound = self.lb[idx] if row.coeffs[idx] > 0 else self.ub[idx]
                        changed |= self._fix(idx, bound)
                    row.alive = False
                    self.stats.note_removal("forcing")
                    changed = True
                    continue
                changed |= self._propagate_eq(row, lo, hi)
        return changed

    def _propagate_le(self, row: _Row) -> bool:
        """Singleton conversion and bound propagation for one LE row."""
        changed = False
        free = self._free_support(row)
        if len(free) == 1:
            idx = free[0]
            coef = row.coeffs[idx]
            residual = row.rhs - self._fixed_sum(row)
            if coef > 0:
                changed |= self._set_ub(idx, residual / coef)
            else:
                changed |= self._set_lb(idx, residual / coef)
            row.alive = False
            self.stats.note_removal("singleton")
            return True
        lo, _ = self._activity(row)
        for idx in free:
            coef = row.coeffs[idx]
            min_contrib, _ = self._contrib_range(idx, coef)
            residual = lo - min_contrib
            limit = row.rhs - residual
            if coef > 0:
                implied = limit / coef
                if implied < self.ub[idx] - 1e-7:
                    changed |= self._set_ub(idx, implied)
            else:
                implied = limit / coef
                if implied > self.lb[idx] + 1e-7:
                    changed |= self._set_lb(idx, implied)
        return changed

    def _propagate_eq(self, row: _Row, lo: float, hi: float) -> bool:
        """Two-sided bound propagation for one equality row."""
        changed = False
        for idx in self._free_support(row):
            coef = row.coeffs[idx]
            min_contrib, max_contrib = self._contrib_range(idx, coef)
            le_limit = row.rhs - (lo - min_contrib)
            ge_limit = row.rhs - (hi - max_contrib)
            if coef > 0:
                if le_limit / coef < self.ub[idx] - 1e-7:
                    changed |= self._set_ub(idx, le_limit / coef)
                if ge_limit / coef > self.lb[idx] + 1e-7:
                    changed |= self._set_lb(idx, ge_limit / coef)
            else:
                if le_limit / coef > self.lb[idx] + 1e-7:
                    changed |= self._set_lb(idx, le_limit / coef)
                if ge_limit / coef < self.ub[idx] - 1e-7:
                    changed |= self._set_ub(idx, ge_limit / coef)
        return changed

    # ------------------------------------------------------------------
    # coefficient tightening (LE rows, binary variables)

    def _tighten_pass(self) -> bool:
        changed = False
        for row in self.rows:
            if not row.alive or row.sense is not Sense.LE:
                continue
            _, hi = self._activity(row)
            for idx in list(row.coeffs):
                if self._is_fixed(idx):
                    continue
                if not (self.is_int[idx] and self.lb[idx] == 0.0 and self.ub[idx] == 1.0):
                    continue
                coef = row.coeffs[idx]
                _, max_contrib = self._contrib_range(idx, coef)
                rest_max = hi - max_contrib
                if coef > 0:
                    # Valid when rhs - coef < rest_max < rhs: shrink both
                    # the coefficient and the rhs; 0-1 points unchanged,
                    # fractional points strictly cut.
                    if rest_max < row.rhs - 1e-9 and rest_max > row.rhs - coef + 1e-9:
                        new_coef = rest_max - (row.rhs - coef)
                        hi += (new_coef - coef)  # ub contribution shrinks
                        row.coeffs[idx] = new_coef
                        row.rhs = rest_max
                        self.stats.coeffs_tightened += 1
                        changed = True
                else:
                    # Mirror case via the complement variable: shrink the
                    # magnitude of a negative coefficient, rhs unchanged.
                    if rest_max > row.rhs + 1e-9 and rest_max < row.rhs - coef - 1e-9:
                        new_coef = row.rhs - rest_max
                        row.coeffs[idx] = new_coef
                        self.stats.coeffs_tightened += 1
                        changed = True
        return changed

    # ------------------------------------------------------------------
    # duplicate / dominated rows

    def _signature(self, row: _Row) -> "Optional[Tuple]":
        items = sorted(
            (idx, coef) for idx, coef in row.coeffs.items() if coef != 0.0
        )
        if not items:
            return None
        scale = max(abs(c) for _, c in items)
        if row.sense is Sense.EQ and items[0][1] < 0:
            scale = -scale
        key = tuple((idx, round(coef / scale, 12)) for idx, coef in items)
        return (row.sense.value, key), row.rhs / scale

    def _duplicate_pass(self) -> bool:
        changed = False
        best: "Dict[Tuple, Tuple[int, float]]" = {}
        for index, row in enumerate(self.rows):
            if not row.alive:
                continue
            sig = self._signature(row)
            if sig is None:
                continue
            key, rhs = sig
            if key not in best:
                best[key] = (index, rhs)
                continue
            kept_index, kept_rhs = best[key]
            if row.sense is Sense.EQ:
                if abs(rhs - kept_rhs) <= 1e-9:
                    row.alive = False
                    self.stats.note_removal("duplicate")
                    changed = True
                else:
                    kept = self.rows[kept_index]
                    raise _Infeasible(InfeasibilityCertificate(
                        code="row-infeasible",
                        reason=(
                            f"equality constraints {kept.label(kept_index)} and "
                            f"{row.label(index)} share coefficients but demand "
                            f"different right-hand sides"
                        ),
                        details={"rows": [kept.label(kept_index), row.label(index)],
                                 "rhs": [kept_rhs, rhs]},
                    ))
                continue
            # LE twins: keep the tighter rhs, drop the other.
            if rhs >= kept_rhs - 1e-9:
                row.alive = False
                reason = "duplicate" if abs(rhs - kept_rhs) <= 1e-9 else "dominated"
                self.stats.note_removal(reason)
                changed = True
            else:
                self.rows[kept_index].alive = False
                self.stats.note_removal("dominated")
                best[key] = (index, rhs)
                changed = True
        return changed

    # ------------------------------------------------------------------
    # implied redundancy via equality substitution

    def _implied_pass(self) -> bool:
        changed = False
        eq_by_var: "Dict[int, List[_Row]]" = {}
        for row in self.rows:
            if row.alive and row.sense is Sense.EQ and len(row.coeffs) <= _SUBST_EQ_SUPPORT:
                for idx in row.coeffs:
                    eq_by_var.setdefault(idx, []).append(row)
        for index, row in enumerate(self.rows):
            if not row.alive or row.sense is not Sense.LE:
                continue
            if len(row.coeffs) > _SUBST_INEQ_SUPPORT:
                continue
            if self._implied_by_equality(row, eq_by_var):
                row.alive = False
                self.stats.note_removal("implied")
                changed = True
        return changed

    def _implied_by_equality(self, row: _Row, eq_by_var) -> bool:
        """Whether substituting some equality row proves ``row`` redundant."""
        for j, a_j in row.coeffs.items():
            for eq in eq_by_var.get(j, ()):
                c_j = eq.coeffs.get(j, 0.0)
                if c_j == 0.0:
                    continue
                ratio = a_j / c_j
                new_coeffs: "Dict[int, float]" = dict(row.coeffs)
                del new_coeffs[j]
                for i, c_i in eq.coeffs.items():
                    if i == j:
                        continue
                    new_coeffs[i] = new_coeffs.get(i, 0.0) - ratio * c_i
                new_rhs = row.rhs - ratio * eq.rhs
                hi = 0.0
                for idx, coef in new_coeffs.items():
                    _, top = self._contrib_range(idx, coef)
                    hi += top
                if hi <= new_rhs + 1e-9:
                    return True
        return False

    # ------------------------------------------------------------------
    # output construction

    def build_result(self) -> PresolveResult:
        if self.opts.eliminate:
            reduced, rmap = self._build_eliminated()
        else:
            reduced, rmap = self._build_same_space()
        self.stats.vars_after = reduced.num_vars
        self.stats.rows_after = reduced.num_constraints
        self.stats.nonzeros_after = reduced.num_nonzeros
        return PresolveResult(stats=self.stats, model=reduced, map=rmap)

    def _clone_var(self, target: Model, var, lb: float, ub: float):
        return target.add_var(
            var.name,
            lb=lb,
            ub=ub,
            integer=var.is_integer,
            branch_group=var.branch_group,
            branch_key=var.branch_key,
            branch_up_first=var.branch_up_first,
        )

    def _build_same_space(self) -> "Tuple[Model, ReductionMap]":
        model = self.model
        reduced = Model(model.name)
        for var in model.variables:
            self._clone_var(reduced, var, self.lb[var.index], self.ub[var.index])
        for row in self.rows:
            if not row.alive:
                continue
            reduced.add(
                Constraint(LinExpr(dict(row.coeffs)), row.sense, row.rhs, row.name),
                tag=row.tag,
            )
        reduced.set_objective(model.objective.copy())
        variables = reduced.variables
        for group in model.sos1_groups:
            reduced.add_sos1_group([variables[idx] for idx in group])
        rmap = ReductionMap(
            num_original_vars=model.num_vars,
            index_map={i: i for i in range(model.num_vars)},
            fixed_values={},
            objective_offset=0.0,
        )
        return reduced, rmap

    def _build_eliminated(self) -> "Tuple[Model, ReductionMap]":
        model = self.model
        fixed_values: "Dict[int, float]" = {}
        index_map: "Dict[int, int]" = {}
        reduced = Model(model.name)
        for var in model.variables:
            idx = var.index
            if self._is_fixed(idx):
                value = self.lb[idx]
                if self.is_int[idx]:
                    value = float(round(value))
                fixed_values[idx] = value
            else:
                index_map[idx] = reduced.num_vars
                self._clone_var(reduced, var, self.lb[idx], self.ub[idx])
        variables = reduced.variables
        for row in self.rows:
            if not row.alive:
                continue
            coeffs: "Dict[int, float]" = {}
            rhs = row.rhs
            for idx, coef in row.coeffs.items():
                if idx in fixed_values:
                    rhs -= coef * fixed_values[idx]
                elif coef != 0.0:
                    coeffs[index_map[idx]] = coef
            if not coeffs:
                self.stats.note_removal("redundant")
                continue
            reduced.add(
                Constraint(LinExpr(coeffs), row.sense, rhs, row.name), tag=row.tag
            )
        objective = model.objective
        offset = 0.0
        obj_coeffs: "Dict[int, float]" = {}
        for idx, coef in objective.coeffs.items():
            if idx in fixed_values:
                offset += coef * fixed_values[idx]
            elif coef != 0.0:
                obj_coeffs[index_map[idx]] = coef
        reduced.set_objective(LinExpr(obj_coeffs, objective.constant))
        for group in model.sos1_groups:
            kept = [variables[index_map[idx]] for idx in group if idx in index_map]
            if len(kept) >= 2:
                reduced.add_sos1_group(kept)
        rmap = ReductionMap(
            num_original_vars=model.num_vars,
            index_map=index_map,
            fixed_values=fixed_values,
            objective_offset=offset,
        )
        return reduced, rmap
