"""Structured findings of the static analyzer.

Two result kinds come out of :mod:`repro.ilp.analysis`:

* :class:`Diagnostic` — a lint finding about a model (a suspicious or
  provably-broken row, an orphaned variable, ...), graded by
  :class:`Severity`.  The registered codes live in
  :data:`DIAGNOSTIC_CODES`; every emitted diagnostic must use one of
  them so downstream tooling (the ``repro lint`` CLI, the JSON
  output) can rely on a closed vocabulary.
* :class:`InfeasibilityCertificate` — a human-readable proof that a
  model or problem specification admits *no* solution, produced
  before any LP is solved (structural spec checks, presolve bound
  contradictions).

Both are plain frozen dataclasses with ``as_dict`` so they serialize
into telemetry and CLI JSON without further ceremony.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional


class Severity(enum.IntEnum):
    """Lint severity, ordered so ``max()`` picks the worst finding."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: Registered diagnostic codes and what each one means.  ``lint_model``
#: only ever emits these; the CLI documents them verbatim.
DIAGNOSTIC_CODES: "Dict[str, str]" = {
    "unused-variable": "continuous variable appears in no constraint and not in the objective",
    "free-binary": "integer variable appears in no constraint and not in the objective",
    "empty-row": "constraint has no nonzero coefficient and is trivially satisfied",
    "constant-violated-row": "constraint has no nonzero coefficient and is violated outright",
    "infeasible-row": "no point within the variable bounds can satisfy this constraint",
    "redundant-row": "every point within the variable bounds satisfies this constraint",
    "duplicate-row": "another constraint has identical coefficients, sense and rhs",
    "dominated-row": "another constraint with the same coefficients is at least as tight",
    "conflicting-equalities": "two equality rows share coefficients but disagree on the rhs",
    "sos1-conflict": "two or more members of an SOS1 group are fixed to 1",
    "sos1-fixed-overlap": "an SOS1 member is fixed to 1 while peers are still free",
    "coefficient-range": "coefficient magnitudes in one row span a numerically risky range",
}


#: Registered infeasibility-certificate codes.
CERTIFICATE_CODES: "Dict[str, str]" = {
    "task-exceeds-capacity": "one task's minimum FU area exceeds the device capacity (eq. 11)",
    "edge-exceeds-memory": "a data edge exceeds scratch memory yet its endpoints cannot share a partition",
    "precedence-cycle": "the task dependency graph contains a cycle, so no temporal order exists",
    "row-infeasible": "a constraint is violated by every point within the variable bounds",
    "bound-contradiction": "bound propagation crossed a variable's bounds (lb > ub)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``constraint_tag`` carries the formulation family tag of the row
    the finding is about (``"eq2-temporal-order"``, ...), or ``""``
    for variable-level findings and untagged rows.
    """

    severity: Severity
    code: str
    constraint_tag: str
    message: str

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unregistered diagnostic code: {self.code!r}")

    def as_dict(self) -> "Dict[str, object]":
        return {
            "severity": str(self.severity),
            "code": self.code,
            "constraint_tag": self.constraint_tag,
            "message": self.message,
        }

    def __str__(self) -> str:
        where = f" [{self.constraint_tag}]" if self.constraint_tag else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass(frozen=True)
class InfeasibilityCertificate:
    """A structural proof that no feasible solution exists.

    ``reason`` is the human-readable argument; ``details`` holds the
    numbers it rests on (task name, areas, capacities, the offending
    cycle, ...) for machine consumption.
    """

    code: str
    reason: str
    details: "Mapping[str, object]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CERTIFICATE_CODES:
            raise ValueError(f"unregistered certificate code: {self.code!r}")

    def as_dict(self) -> "Dict[str, object]":
        return {
            "code": self.code,
            "reason": self.reason,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        return f"infeasible ({self.code}): {self.reason}"


def worst_severity(diagnostics: "Iterable[Diagnostic]") -> "Optional[Severity]":
    """The highest severity among ``diagnostics``, or None when empty."""
    worst: "Optional[Severity]" = None
    for diag in diagnostics:
        if worst is None or diag.severity > worst:
            worst = diag.severity
    return worst
