"""Static analysis of 0-1 models: lint, presolve, certificates.

The paper's tightening story (eqs. 28-32) is a static analysis of the
formulation; this package generalizes it into a reusable pre-solve
layer over any :class:`~repro.ilp.model.Model`:

* :func:`lint_model` — structural diagnostics (orphaned variables,
  empty/duplicate/dominated/infeasible rows, SOS1 inconsistencies,
  risky coefficient ranges);
* :func:`presolve` — bound propagation, variable fixing, coefficient
  tightening and redundant-row removal, with a :class:`ReductionMap`
  back to the original variable space;
* :func:`analyze_model` — both at once, as the ``repro lint`` CLI and
  the solver pre-pass consume them.

Everything here runs before (and without) any LP solve.
"""

from repro.ilp.analysis.analyzer import AnalysisReport, analyze_model
from repro.ilp.analysis.diagnostics import (
    CERTIFICATE_CODES,
    DIAGNOSTIC_CODES,
    Diagnostic,
    InfeasibilityCertificate,
    Severity,
    worst_severity,
)
from repro.ilp.analysis.lint import lint_model
from repro.ilp.analysis.presolve import (
    PresolveOptions,
    PresolveResult,
    PresolveStats,
    ReductionMap,
    presolve,
)

__all__ = [
    "AnalysisReport",
    "analyze_model",
    "CERTIFICATE_CODES",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "InfeasibilityCertificate",
    "Severity",
    "worst_severity",
    "lint_model",
    "PresolveOptions",
    "PresolveResult",
    "PresolveStats",
    "ReductionMap",
    "presolve",
]
