"""The combined static-analysis entry point.

:func:`analyze_model` runs lint and presolve over one model and folds
both into a single :class:`AnalysisReport` — the object the ``repro
lint`` CLI renders and the exit-code policy is defined on:

* exit 2 — any ERROR diagnostic or an infeasibility certificate;
* exit 1 — warnings only;
* exit 0 — clean (INFO findings do not fail a lint run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ilp.analysis.diagnostics import (
    Diagnostic,
    InfeasibilityCertificate,
    Severity,
    worst_severity,
)
from repro.ilp.analysis.lint import lint_model
from repro.ilp.analysis.presolve import (
    PresolveOptions,
    PresolveResult,
    presolve,
)
from repro.ilp.model import Model


@dataclass(frozen=True)
class AnalysisReport:
    """Lint findings plus presolve outcome for one model."""

    model_name: str
    diagnostics: "List[Diagnostic]"
    presolve: "Optional[PresolveResult]" = None
    certificates: "List[InfeasibilityCertificate]" = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """The ``repro lint`` exit-code policy (0 clean / 1 warn / 2 error)."""
        if self.certificates:
            return 2
        worst = worst_severity(self.diagnostics)
        if worst is Severity.ERROR:
            return 2
        if worst is Severity.WARNING:
            return 1
        return 0

    def as_dict(self) -> "Dict[str, object]":
        payload: "Dict[str, object]" = {
            "model": self.model_name,
            "exit_code": self.exit_code,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "certificates": [c.as_dict() for c in self.certificates],
        }
        if self.presolve is not None:
            payload["presolve"] = self.presolve.stats.as_dict()
        return payload


def analyze_model(
    model: Model,
    presolve_options: "Optional[PresolveOptions]" = None,
    run_presolve: bool = True,
) -> AnalysisReport:
    """Lint ``model`` and (by default) presolve it.

    A presolve infeasibility certificate lands in ``certificates``;
    structural spec-level certificates, which need the problem
    specification rather than the model, are the business of
    :func:`repro.core.precheck.precheck_spec` and are merged by the
    CLI layer.
    """
    diagnostics = lint_model(model)
    result: "Optional[PresolveResult]" = None
    certificates: "List[InfeasibilityCertificate]" = []
    if run_presolve:
        result = presolve(model, presolve_options)
        if result.certificate is not None:
            certificates.append(result.certificate)
    return AnalysisReport(
        model_name=model.name,
        diagnostics=diagnostics,
        presolve=result,
        certificates=certificates,
    )
