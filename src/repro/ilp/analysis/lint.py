"""Model lint: structural diagnostics without solving anything.

:func:`lint_model` inspects a :class:`~repro.ilp.model.Model` and
returns a list of :class:`~repro.ilp.analysis.diagnostics.Diagnostic`
findings.  Checks are purely static — variable usage, per-row activity
ranges under the declared bounds, duplicate/dominated row pairs, SOS1
group consistency and coefficient magnitudes — so linting a model is
cheap compared to even a single LP solve.

Severity policy: findings that make the model *wrong* (a row no point
can satisfy, conflicting equalities, two SOS1 members fixed to 1) are
ERROR; findings that usually indicate a formulation bug but keep the
model solvable (orphaned binaries, empty or duplicate rows, risky
coefficient ranges) are WARNING; harmless slack (redundant or
dominated rows, unused continuous variables) is INFO.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ilp.analysis.diagnostics import Diagnostic, Severity
from repro.ilp.model import Model, Sense

#: One-row coefficient magnitude spread beyond which we warn.
_RANGE_RATIO = 1e8
#: Absolute magnitudes outside [1/_RANGE_ABS, _RANGE_ABS] draw a warning.
_RANGE_ABS = 1e10


def _row_label(model: Model, index: int) -> str:
    name = model.constraints[index].name
    return name if name else f"row#{index}"


def _activity(model: Model, coeffs: "Dict[int, float]") -> "Tuple[float, float]":
    lo = hi = 0.0
    variables = model.variables
    for idx, coef in coeffs.items():
        a = coef * variables[idx].lb
        b = coef * variables[idx].ub
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _check_variable_usage(model: Model, out: "List[Diagnostic]") -> None:
    used = set(model.objective.coeffs)
    for constraint in model.constraints:
        for idx, coef in constraint.expr.coeffs.items():
            if coef != 0.0:
                used.add(idx)
    for var in model.variables:
        if var.index in used:
            continue
        if var.is_integer:
            out.append(Diagnostic(
                Severity.WARNING, "free-binary", "",
                f"integer variable {var.name} appears in no constraint and "
                f"not in the objective; the solver will branch on it for "
                f"nothing",
            ))
        else:
            out.append(Diagnostic(
                Severity.INFO, "unused-variable", "",
                f"variable {var.name} appears in no constraint and not in "
                f"the objective",
            ))


def _check_rows(model: Model, out: "List[Diagnostic]") -> None:
    tol = 1e-9
    tags = model.constraint_tags
    for index, constraint in enumerate(model.constraints):
        tag = tags[index]
        label = _row_label(model, index)
        coeffs = {i: c for i, c in constraint.expr.coeffs.items() if c != 0.0}

        if not coeffs:
            violated = (
                (constraint.sense is Sense.LE and 0.0 > constraint.rhs + tol)
                or (constraint.sense is Sense.GE and 0.0 < constraint.rhs - tol)
                or (constraint.sense is Sense.EQ and abs(constraint.rhs) > tol)
            )
            if violated:
                out.append(Diagnostic(
                    Severity.ERROR, "constant-violated-row", tag,
                    f"{label} has no nonzero coefficient yet demands "
                    f"0 {constraint.sense} {constraint.rhs:g}",
                ))
            else:
                out.append(Diagnostic(
                    Severity.WARNING, "empty-row", tag,
                    f"{label} has no nonzero coefficient and is trivially "
                    f"satisfied",
                ))
            continue

        lo, hi = _activity(model, coeffs)
        if constraint.sense is Sense.LE:
            infeasible = lo > constraint.rhs + tol
            redundant = hi <= constraint.rhs + tol
        elif constraint.sense is Sense.GE:
            infeasible = hi < constraint.rhs - tol
            redundant = lo >= constraint.rhs - tol
        else:
            infeasible = lo > constraint.rhs + tol or hi < constraint.rhs - tol
            redundant = abs(hi - lo) <= tol and abs(lo - constraint.rhs) <= tol
        if infeasible:
            out.append(Diagnostic(
                Severity.ERROR, "infeasible-row", tag,
                f"{label} requires activity {constraint.sense} "
                f"{constraint.rhs:g} but the bounds only allow "
                f"[{lo:g}, {hi:g}]",
            ))
        elif redundant:
            out.append(Diagnostic(
                Severity.INFO, "redundant-row", tag,
                f"{label} is satisfied by every point within the bounds "
                f"(activity range [{lo:g}, {hi:g}], rhs {constraint.rhs:g})",
            ))

        magnitudes = [abs(c) for c in coeffs.values()]
        biggest, smallest = max(magnitudes), min(magnitudes)
        if (
            biggest / smallest > _RANGE_RATIO
            or biggest > _RANGE_ABS
            or smallest < 1.0 / _RANGE_ABS
        ):
            out.append(Diagnostic(
                Severity.WARNING, "coefficient-range", tag,
                f"{label} mixes coefficient magnitudes {smallest:g} and "
                f"{biggest:g}; expect numerical trouble in the LP",
            ))


def _normalized_key(constraint) -> "Optional[Tuple]":
    """Sense-normalized coefficient signature plus scaled rhs."""
    coeffs = {i: c for i, c in constraint.expr.coeffs.items() if c != 0.0}
    if not coeffs:
        return None
    sense = constraint.sense
    rhs = constraint.rhs
    if sense is Sense.GE:
        coeffs = {i: -c for i, c in coeffs.items()}
        rhs = -rhs
        sense = Sense.LE
    items = sorted(coeffs.items())
    scale = max(abs(c) for _, c in items)
    if sense is Sense.EQ and items[0][1] < 0:
        scale = -scale
    key = (sense.value, tuple((i, round(c / scale, 12)) for i, c in items))
    return key, rhs / scale


def _check_twins(model: Model, out: "List[Diagnostic]") -> None:
    tags = model.constraint_tags
    groups: "Dict[Tuple, List[Tuple[int, float]]]" = {}
    for index, constraint in enumerate(model.constraints):
        sig = _normalized_key(constraint)
        if sig is None:
            continue
        key, rhs = sig
        groups.setdefault(key, []).append((index, rhs))
    for key, members in groups.items():
        if len(members) < 2:
            continue
        sense_value = key[0]
        members.sort(key=lambda item: (item[1], item[0]))
        keeper_index, keeper_rhs = members[0]
        keeper = _row_label(model, keeper_index)
        for index, rhs in members[1:]:
            label = _row_label(model, index)
            if sense_value == Sense.EQ.value and abs(rhs - keeper_rhs) > 1e-9:
                out.append(Diagnostic(
                    Severity.ERROR, "conflicting-equalities", tags[index],
                    f"{label} and {keeper} share coefficients but demand "
                    f"different right-hand sides",
                ))
            elif abs(rhs - keeper_rhs) <= 1e-9:
                out.append(Diagnostic(
                    Severity.WARNING, "duplicate-row", tags[index],
                    f"{label} duplicates {keeper}",
                ))
            else:
                out.append(Diagnostic(
                    Severity.INFO, "dominated-row", tags[index],
                    f"{label} is dominated by the tighter {keeper}",
                ))


def _check_sos1(model: Model, out: "List[Diagnostic]") -> None:
    variables = model.variables
    for number, group in enumerate(model.sos1_groups, start=1):
        fixed_one = [idx for idx in group if variables[idx].lb > 0.5]
        free = [
            idx for idx in group
            if variables[idx].lb <= 0.5 < variables[idx].ub
        ]
        names_one = [variables[idx].name for idx in fixed_one]
        if len(fixed_one) >= 2:
            out.append(Diagnostic(
                Severity.ERROR, "sos1-conflict", "",
                f"SOS1 group {number} has {len(fixed_one)} members fixed to "
                f"1: {', '.join(names_one)}",
            ))
        elif len(fixed_one) == 1 and free:
            out.append(Diagnostic(
                Severity.WARNING, "sos1-fixed-overlap", "",
                f"SOS1 group {number} member {names_one[0]} is fixed to 1 "
                f"while {len(free)} peers can still take 1",
            ))


def lint_model(model: Model) -> "List[Diagnostic]":
    """All lint findings for ``model``, in check order."""
    out: "List[Diagnostic]" = []
    _check_variable_usage(model, out)
    _check_rows(model, out)
    _check_twins(model, out)
    _check_sos1(model, out)
    return out
