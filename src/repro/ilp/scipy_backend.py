"""LP relaxation solves via SciPy's HiGHS ``linprog``.

This is the workhorse backend used inside branch and bound: one call
per node, with per-node variable-bound overrides (the branching
decisions).  The model matrices are compiled once into a
:class:`~repro.ilp.standard_form.StandardForm` and reused.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError, TransientSolverError
from repro.ilp.solution import LPResult, SolveStatus, ValueVector
from repro.ilp.standard_form import StandardForm


def _row_marginals(result, block: str, m: int) -> "Optional[np.ndarray]":
    """Row duals of one constraint block, zero-filled when it is empty.

    ``linprog`` omits the block (or its marginals) when no rows were
    passed; proof logging still wants a well-shaped vector so the
    certificate side never has to special-case empty systems.
    """
    if m == 0:
        return np.zeros(0)
    entry = getattr(result, block, None)
    marginals = getattr(entry, "marginals", None) if entry is not None else None
    if marginals is None:
        return None
    vector = np.asarray(marginals, dtype=float)
    if vector.shape[0] != m or not np.all(np.isfinite(vector)):
        return None
    return vector


def solve_lp_scipy(
    form: StandardForm,
    lb_override: "Optional[np.ndarray]" = None,
    ub_override: "Optional[np.ndarray]" = None,
) -> LPResult:
    """Solve the LP relaxation of ``form`` with optional bound overrides.

    Integrality is ignored (that is the point of a relaxation); the
    overrides carry the branch-and-bound fixings.  Returns an
    :class:`~repro.ilp.solution.LPResult` whose values mapping is keyed
    by variable index (an array-backed
    :class:`~repro.ilp.solution.ValueVector` — no per-node dict build).
    Bounds go to ``linprog`` as the form's preallocated ``(n, 2)``
    array (:meth:`~repro.ilp.standard_form.StandardForm.bounds_pairs`),
    reused across nodes instead of a fresh per-call list of pairs.
    OPTIMAL results carry the basis' ``reduced_costs`` when scipy
    reports bound marginals.
    """
    lb = form.lb if lb_override is None else lb_override
    ub = form.ub if ub_override is None else ub_override
    if np.any(lb > ub + 1e-12):
        # A branching fixation contradicts the bounds: trivially infeasible,
        # no need to call the solver.
        return LPResult(status=SolveStatus.INFEASIBLE)

    result = linprog(
        c=form.c,
        A_ub=form.a_ub if form.a_ub.shape[0] else None,
        b_ub=form.b_ub if form.b_ub.shape[0] else None,
        A_eq=form.a_eq if form.a_eq.shape[0] else None,
        b_eq=form.b_eq if form.b_eq.shape[0] else None,
        bounds=form.bounds_pairs(lb, ub),
        method="highs",
    )
    # HiGHS status codes: 0 optimal, 1 iteration limit, 2 infeasible,
    # 3 unbounded, 4 numerical trouble.
    if result.status == 0:
        reduced = None
        lower = getattr(result, "lower", None)
        upper = getattr(result, "upper", None)
        if (
            lower is not None
            and upper is not None
            and getattr(lower, "marginals", None) is not None
            and getattr(upper, "marginals", None) is not None
        ):
            reduced = np.asarray(lower.marginals, dtype=float) + np.asarray(
                upper.marginals, dtype=float
            )
        dual_ub = _row_marginals(result, "ineqlin", form.b_ub.shape[0])
        dual_eq = _row_marginals(result, "eqlin", form.b_eq.shape[0])
        return LPResult(
            status=SolveStatus.OPTIMAL,
            objective=float(result.fun),
            values=ValueVector(result.x),
            reduced_costs=reduced,
            dual_ub=dual_ub,
            dual_eq=dual_eq,
        )
    if result.status == 2:
        return LPResult(status=SolveStatus.INFEASIBLE)
    if result.status == 3:
        return LPResult(status=SolveStatus.UNBOUNDED)
    if result.status in (1, 4):
        # Iteration-limit expiry and numerical trouble are transient
        # fault classes: a retry (possibly after a fallback) can
        # legitimately succeed, so the resilience layer must be able to
        # tell them apart from structural misuse.
        raise TransientSolverError(
            f"linprog failed with status {result.status}: {result.message}",
            backend="scipy-highs",
            raw_status=int(result.status),
        )
    raise SolverError(
        f"linprog failed with status {result.status}: {result.message}"
    )
