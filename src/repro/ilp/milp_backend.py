"""Independent MILP path via ``scipy.optimize.milp`` (HiGHS B&B).

Two roles:

* a *baseline* for the paper's variable-selection experiments — this is
  the modern equivalent of "leave the variable selection to the
  solver";
* a correctness cross-check: the test suite asserts that our
  :class:`~repro.ilp.branch_bound.BranchAndBound` and HiGHS agree on
  optimal objective values across many models.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import TransientSolverError
from repro.ilp.model import Model
from repro.ilp.solution import MilpResult, SolveStats, SolveStatus
from repro.ilp.standard_form import StandardForm, compile_standard_form


def solve_milp_scipy(
    model: "Model | StandardForm",
    time_limit_s: "Optional[float]" = None,
) -> MilpResult:
    """Solve a model with SciPy's HiGHS MILP solver.

    Accepts either a :class:`~repro.ilp.model.Model` or an
    already-compiled :class:`~repro.ilp.standard_form.StandardForm`.
    """
    form = model if isinstance(model, StandardForm) else compile_standard_form(model)

    constraints = []
    if form.a_ub.shape[0]:
        constraints.append(
            LinearConstraint(
                form.a_ub, -np.inf * np.ones(form.a_ub.shape[0]), form.b_ub
            )
        )
    if form.a_eq.shape[0]:
        constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))

    options = {}
    if time_limit_s is not None:
        options["time_limit"] = float(time_limit_s)

    start = time.monotonic()
    result = milp(
        c=form.c,
        constraints=constraints,
        bounds=Bounds(form.lb, form.ub),
        integrality=form.integrality,
        options=options,
    )
    elapsed = time.monotonic() - start
    stats = SolveStats(wall_time_s=elapsed)
    node_count = getattr(result, "mip_node_count", None)
    if node_count is not None:
        stats.nodes_explored = int(node_count)

    # scipy.milp status: 0 optimal, 1 iteration/time limit, 2 infeasible,
    # 3 unbounded, 4 other.
    if result.status == 0:
        values = {idx: float(v) for idx, v in enumerate(result.x)}
        objective = float(result.fun)
        stats.best_bound = objective
        stats.gap = 0.0
        return MilpResult(
            status=SolveStatus.OPTIMAL,
            objective=objective,
            values=values,
            stats=stats,
            bound=objective,
            gap=0.0,
        )
    if result.status == 1:
        stats.stop_reason = "time_limit"
        if result.x is None:
            return MilpResult(status=SolveStatus.TIMEOUT, stats=stats)
        # Limit expired with an incumbent: same FEASIBLE-plus-gap
        # contract as the in-repo branch and bound.  HiGHS reports its
        # proven dual bound / gap when available.
        values = {idx: float(v) for idx, v in enumerate(result.x)}
        objective = float(result.fun)
        bound = getattr(result, "mip_dual_bound", None)
        bound = float(bound) if bound is not None else None
        gap = getattr(result, "mip_gap", None)
        gap = float(gap) if gap is not None else None
        stats.best_bound = bound
        stats.gap = gap
        return MilpResult(
            status=SolveStatus.FEASIBLE,
            objective=objective,
            values=values,
            stats=stats,
            bound=bound,
            gap=gap,
        )
    if result.status == 2:
        return MilpResult(status=SolveStatus.INFEASIBLE, stats=stats)
    if result.status == 3:
        return MilpResult(status=SolveStatus.UNBOUNDED, stats=stats)
    # Status 4 ("other", typically numerical trouble) is the transient
    # class: retry-eligible for the resilience layer, a degradation
    # cause (never a crash) for the partitioner.
    raise TransientSolverError(
        f"scipy.milp failed: status {result.status}: {result.message}",
        backend="scipy-milp",
        raw_status=int(result.status),
    )
