"""Root cutting planes: separation, exact validation, form extension.

The paper's own headline result (Table 1 vs Table 2) is that model
*tightening* beats raw search.  This module continues that story
dynamically: after the standard form is compiled, a root cut loop
separates violated valid inequalities against the root LP's fractional
point and appends them to the inequality system, in rounds, until the
relaxation stops improving.  Three families, all derived from the
formulation's packing structure:

``cover``
    Knapsack cover cuts from capacity rows (the eq. 11-style ``x``/``u``
    rows): a set ``S`` of binary columns whose coefficients provably
    overrun the row even with everything else at its most forgiving
    bound cannot be all-1, so ``sum_S x_j <= |S| - 1``.
``clique``
    Conflict/SOS1-clique cuts from the assignment packing rows: binary
    variables that are *pairwise* forbidden from being 1 together (each
    pair justified by a recorded row via exact interval arithmetic)
    satisfy ``sum_Q x_j <= 1`` jointly — strictly stronger than the
    pairwise rows the LP sees.
``implied_bound``
    Generalized Glover-product tightenings (the paper's eq. 28-32
    family, generated on demand): when a row implies ``z <= lo0`` under
    ``y = 0`` and ``z <= hi1 < lo0`` under ``y = 1`` for a binary
    trigger ``y``, then ``z + (lo0 - hi1) y <= lo0`` is valid and cuts
    off fractional ``(z, y)`` points.  Branch bounds are snapped *up*
    to a dyadic grid so the recorded coefficient ``lo0 - hi1`` is exact
    in float64 — the checker re-derives it in rational arithmetic and
    demands exact equality.

Every accepted cut carries a derivation certificate and is validated
**before acceptance** with the independent checker's own
:func:`~repro.ilp.certify.checker.verify_cut_record` (exact
:class:`~fractions.Fraction` arithmetic) — generation and audit can
never disagree.  Candidates that fail the exact check (float round-off
at a strict-inequality boundary) are dropped and counted as
``cuts_forfeited``, never emitted.

The extended :class:`~repro.ilp.standard_form.StandardForm` is what the
whole downstream stack sees — incremental-kernel warm starts,
reduced-cost fixing, the node cache, checkpoint fingerprints, and the
parallel root snapshot all operate on the tightened model consistently.
Cut rows ride into proof logs as typed ``cut`` records right after the
header (schema ``repro.bnb_proof/v2``); see :mod:`repro.ilp.certify`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
from scipy import sparse

from repro.errors import SolverError
from repro.ilp.solution import LPResult, SolveStatus
from repro.ilp.standard_form import StandardForm

#: Implied-bound branch bounds are snapped up to this dyadic grid so
#: float64 represents both bounds *and their difference* exactly.
_GRID = 1 << 20

#: Strictness margin for float-side separation tests; the exact
#: verification pass is the authority, this only keeps borderline
#: candidates from wasting a Fraction re-derivation.
_EPS = 1e-9

#: Per-row nonzero-count ceiling for the pairwise conflict scan.
_CONFLICT_WIDTH = 32

#: Maximum clique size the greedy extension grows to.
_MAX_CLIQUE = 16

CUT_FAMILIES = ("cover", "clique", "implied_bound")

#: ``{p: {q: (row_kind, row)}}`` — a justified pairwise conflict graph.
ConflictGraph = Dict[int, Dict[int, Tuple[str, int]]]


@dataclass(frozen=True)
class CutRow:
    """One cutting plane ``sum coeffs[j] * x_j <= rhs`` + its certificate.

    ``cert`` is the family-specific derivation witness the independent
    checker re-proves (see
    :func:`repro.ilp.certify.checker.verify_cut_record`).
    """

    family: str
    coeffs: "Dict[int, float]"
    rhs: float
    cert: "Dict[str, Any]"

    def as_dict(self) -> "Dict[str, Any]":
        """JSON-safe serialization (shipped to parallel workers)."""
        return {
            "family": self.family,
            "coeffs": {str(j): float(a) for j, a in self.coeffs.items()},
            "rhs": float(self.rhs),
            "cert": self.cert,
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "CutRow":
        return cls(
            family=str(data["family"]),
            coeffs={int(k): float(v) for k, v in dict(data["coeffs"]).items()},
            rhs=float(data["rhs"]),
            cert=dict(data["cert"]),
        )

    def proof_record(self, index: int) -> "Dict[str, Any]":
        """The (unsealed) ``cut`` proof-log record for this row."""
        record = {"kind": "cut", "index": int(index)}
        record.update(self.as_dict())
        return record

    def violation(self, x: "np.ndarray") -> float:
        """How far ``x`` violates this cut (positive = violated)."""
        return (
            sum(a * float(x[j]) for j, a in self.coeffs.items()) - self.rhs
        )

    def key(self) -> "Tuple":
        """Dedup key: the row itself, certificate-independent."""
        return (tuple(sorted(self.coeffs.items())), self.rhs)


def extend_standard_form(
    form: StandardForm, rows: "Sequence[Mapping[str, Any]]"
) -> StandardForm:
    """Append serialized cut rows to a form's inequality system.

    Deterministic layout — coefficients in sorted column order, CSR
    index dtypes preserved — so the coordinator and every parallel
    worker build byte-identical extended forms (and therefore identical
    checkpoint/proof fingerprints) from the same serialized rows.
    Shares ``c``/``a_eq``/bounds with the input form.
    """
    if not rows:
        return form
    base = form.a_ub.tocsr()
    data: "List[float]" = [float(v) for v in base.data]
    indices: "List[int]" = [int(v) for v in base.indices]
    indptr: "List[int]" = [int(v) for v in base.indptr]
    b_ub: "List[float]" = [float(v) for v in form.b_ub]
    for row in rows:
        coeffs = {int(k): float(v) for k, v in dict(row["coeffs"]).items()}
        for j in sorted(coeffs):
            indices.append(j)
            data.append(coeffs[j])
        indptr.append(len(data))
        b_ub.append(float(row["rhs"]))
    matrix = sparse.csr_matrix(
        (
            np.array(data, dtype=float),
            np.array(indices, dtype=base.indices.dtype),
            np.array(indptr, dtype=base.indptr.dtype),
        ),
        shape=(base.shape[0] + len(rows), form.num_vars),
    )
    return StandardForm(
        c=form.c,
        a_ub=matrix,
        b_ub=np.array(b_ub, dtype=float),
        a_eq=form.a_eq,
        b_eq=form.b_eq,
        lb=form.lb,
        ub=form.ub,
        integrality=form.integrality,
    )


# ----------------------------------------------------------------------
# separation (float-side; exact validation happens in the cut loop)


def _binary_mask(form: StandardForm) -> "np.ndarray":
    """Columns that are genuinely 0-1 integer in the root box."""
    return (
        (form.integrality > 0.5) & (form.lb >= 0.0) & (form.ub <= 1.0)
    )


def _values_vector(values: "Mapping", n: int) -> "np.ndarray":
    arr = getattr(values, "array", None)
    if arr is not None:
        return np.asarray(arr, dtype=float)
    out = np.zeros(n)
    for j, v in values.items():
        out[int(j)] = float(v)
    return out


def separate_cover_cuts(
    form: StandardForm,
    x: "np.ndarray",
    *,
    min_violation: float,
) -> "List[CutRow]":
    """Greedy knapsack cover separation over the ``a_ub`` capacity rows.

    For each row, binary columns with positive coefficients are added
    in decreasing fractional-value order until their joint activation
    provably overruns the row (everything else folded at its minimum
    activity); the cover is then minimalized from the low-``x`` end.
    At most one cover per row per round.
    """
    a = form.a_ub.tocsr()
    lb, ub = form.lb, form.ub
    is_bin = _binary_mask(form)
    cuts: "List[CutRow]" = []
    for r in range(a.shape[0]):
        s, e = int(a.indptr[r]), int(a.indptr[r + 1])
        if e - s < 2:
            continue
        base_min = 0.0
        candidates: "List[Tuple[int, float]]" = []
        usable = True
        for j_raw, av_raw in zip(a.indices[s:e], a.data[s:e]):
            j, av = int(j_raw), float(av_raw)
            if av == 0.0:
                continue
            bound = lb[j] if av > 0 else ub[j]
            if not math.isfinite(float(bound)):
                usable = False
                break
            base_min += av * float(bound)
            if av > 0 and is_bin[j] and lb[j] == 0.0 and ub[j] == 1.0:
                candidates.append((j, av))
        if not usable or len(candidates) < 2:
            continue
        rhs = float(form.b_ub[r])
        # Members with lb == 0 contribute exactly their coefficient
        # when switched from the min bound to 1.
        candidates.sort(key=lambda t: (-float(x[t[0]]), -t[1]))
        chosen: "List[Tuple[int, float]]" = []
        activity = base_min
        overran = False
        for j, av in candidates:
            chosen.append((j, av))
            activity += av
            if activity > rhs + _EPS:
                overran = True
                break
        if not overran or len(chosen) < 2:
            continue
        # Minimalize: drop low-x members whose removal keeps the overrun
        # (smaller covers mean smaller rhs and larger violation).
        for j, av in sorted(chosen, key=lambda t: float(x[t[0]])):
            if len(chosen) <= 2:
                break
            if activity - av > rhs + _EPS:
                chosen.remove((j, av))
                activity -= av
        members = sorted(j for j, _ in chosen)
        violation = sum(float(x[j]) for j in members) - (len(members) - 1)
        if violation <= min_violation:
            continue
        cuts.append(
            CutRow(
                family="cover",
                coeffs={j: 1.0 for j in members},
                rhs=float(len(members) - 1),
                cert={"row": r, "members": members},
            )
        )
    return cuts


def build_conflict_graph(
    form: StandardForm, *, width_limit: int = _CONFLICT_WIDTH
) -> ConflictGraph:
    """Pairwise conflicts between binary columns, each with its witness.

    Two binaries conflict when some row cannot hold with both at 1:
    for a ``<=`` row the pair's minimum activity exceeds the rhs; for
    an ``=`` row additionally when the pair's maximum activity cannot
    reach it.  Only rows of at most ``width_limit`` nonzeros are
    scanned (the packing rows that matter are narrow; the scan is
    quadratic per row).  Independent of any LP point — built once per
    cut loop.
    """
    lb, ub = form.lb, form.ub
    is_bin = _binary_mask(form)
    graph: ConflictGraph = {}

    def note(p: int, q: int, kind: str, row: int) -> None:
        graph.setdefault(p, {}).setdefault(q, (kind, row))
        graph.setdefault(q, {}).setdefault(p, (kind, row))

    for kind, matrix, rhs_vec in (
        ("ub", form.a_ub.tocsr(), form.b_ub),
        ("eq", form.a_eq.tocsr(), form.b_eq),
    ):
        for r in range(matrix.shape[0]):
            s, e = int(matrix.indptr[r]), int(matrix.indptr[r + 1])
            if e - s < 2 or e - s > width_limit:
                continue
            entries = [
                (int(j), float(av))
                for j, av in zip(matrix.indices[s:e], matrix.data[s:e])
                if float(av) != 0.0
            ]
            if any(
                not (math.isfinite(float(lb[j])) and math.isfinite(float(ub[j])))
                for j, _ in entries
            ):
                continue
            base_min = sum(
                av * (float(lb[j]) if av > 0 else float(ub[j]))
                for j, av in entries
            )
            base_max = sum(
                av * (float(ub[j]) if av > 0 else float(lb[j]))
                for j, av in entries
            )
            # Delta of switching one binary from its extreme to 1.
            dmin = {
                j: av - av * (float(lb[j]) if av > 0 else float(ub[j]))
                for j, av in entries
                if is_bin[j] and ub[j] == 1.0
            }
            dmax = {
                j: av - av * (float(ub[j]) if av > 0 else float(lb[j]))
                for j, av in entries
                if is_bin[j] and ub[j] == 1.0
            }
            rhs = float(rhs_vec[r])
            cols = sorted(dmin)
            for ai, p in enumerate(cols):
                for q in cols[ai + 1:]:
                    if base_min + dmin[p] + dmin[q] > rhs + _EPS:
                        note(p, q, kind, r)
                    elif (
                        kind == "eq"
                        and base_max + dmax[p] + dmax[q] < rhs - _EPS
                    ):
                        note(p, q, kind, r)
    return graph


def separate_clique_cuts(
    form: StandardForm,
    x: "np.ndarray",
    graph: ConflictGraph,
    *,
    min_violation: float,
    max_seeds: int = 64,
) -> "List[CutRow]":
    """Grow violated cliques in the conflict graph.

    Seeds are conflicting pairs already violated at ``x``; each is
    greedily extended (highest fractional value first) by columns in
    conflict with *every* current member, so the pairwise certificate
    covers the whole clique.
    """
    seeds: "List[Tuple[float, int, int]]" = []
    for p, nbrs in graph.items():
        for q in nbrs:
            if p < q:
                score = float(x[p]) + float(x[q])
                if score > 1.0 + min_violation:
                    seeds.append((score, p, q))
    seeds.sort(reverse=True)
    cuts: "List[CutRow]" = []
    seen: "Set[FrozenSet[int]]" = set()
    for _, p, q in seeds[:max_seeds]:
        members = [p, q]
        common = set(graph[p]) & set(graph[q])
        common.discard(p)
        common.discard(q)
        for v in sorted(common, key=lambda j: -float(x[j])):
            if v not in common:
                continue
            members.append(v)
            common &= set(graph[v])
            if len(members) >= _MAX_CLIQUE:
                break
        key = frozenset(members)
        if key in seen:
            continue
        seen.add(key)
        violation = sum(float(x[j]) for j in members) - 1.0
        if violation <= min_violation:
            continue
        ordered = sorted(members)
        pairs: "List[List[Any]]" = []
        for ai, mp in enumerate(ordered):
            for mq in ordered[ai + 1:]:
                kind, row = graph[mp][mq]
                pairs.append([mp, mq, kind, row])
        cuts.append(
            CutRow(
                family="clique",
                coeffs={j: 1.0 for j in ordered},
                rhs=1.0,
                cert={"members": ordered, "pairs": pairs},
            )
        )
    return cuts


def _ceil_to_grid(value: Fraction) -> "Optional[Fraction]":
    """Round a bound *up* to the dyadic grid (exactly float64-safe)."""
    if abs(value) > (1 << 30):
        return None
    return Fraction(math.ceil(value * _GRID), _GRID)


def separate_implied_bound_cuts(
    form: StandardForm,
    x: "np.ndarray",
    *,
    min_violation: float,
    width_limit: int = _CONFLICT_WIDTH,
) -> "List[CutRow]":
    """On-demand Glover-product tightenings from the ``a_ub`` rows.

    For each row coupling a continuous ``z`` (positive coefficient)
    with binary triggers ``y`` (positive coefficient, fractional at
    ``x``), the branch bounds ``z <= lo0`` (``y = 0``) and
    ``z <= hi1`` (``y = 1``) are derived in *exact* rationals, snapped
    up to the dyadic grid, and emitted as ``z + (lo0-hi1) y <= lo0``
    when violated.  Exact derivation keeps the later Fraction
    re-verification from ever disagreeing with generation.
    """
    a = form.a_ub.tocsr()
    lb, ub, integrality = form.lb, form.ub, form.integrality
    is_bin = _binary_mask(form)
    int_tol = 1e-6
    cuts: "List[CutRow]" = []
    for r in range(a.shape[0]):
        s, e = int(a.indptr[r]), int(a.indptr[r + 1])
        if e - s < 2 or e - s > width_limit:
            continue
        entries = [
            (int(j), Fraction(float(av)))
            for j, av in zip(a.indices[s:e], a.data[s:e])
            if float(av) != 0.0
        ]
        usable = True
        contrib: "Dict[int, Fraction]" = {}
        for j, av in entries:
            bound = float(lb[j]) if av > 0 else float(ub[j])
            if not math.isfinite(bound):
                usable = False
                break
            contrib[j] = av * Fraction(bound)
        if not usable:
            continue
        sum_min = sum(contrib.values(), Fraction(0))
        rhs = Fraction(float(form.b_ub[r]))
        z_cands = [
            (j, av)
            for j, av in entries
            if av > 0
            and integrality[j] <= 0.5
            and math.isfinite(float(ub[j]))
        ]
        y_cands = [
            (j, av)
            for j, av in entries
            if av > 0
            and is_bin[j]
            and lb[j] == 0.0
            and ub[j] == 1.0
            and int_tol < float(x[j]) < 1.0 - int_tol
        ]
        if not z_cands or not y_cands:
            continue
        for z, a_z in z_cands:
            minrest = sum_min - contrib[z]
            u0 = (rhs - minrest) / a_z
            ub_z = Fraction(float(ub[z]))
            if u0 < ub_z:
                lo0_raw: Fraction = u0
                row0: "Optional[List[Any]]" = ["ub", r]
            else:
                lo0_raw = ub_z
                row0 = None
            lo0 = _ceil_to_grid(lo0_raw)
            if lo0 is None:
                continue
            for y, a_y in y_cands:
                if y == z:
                    continue
                # y's minimum contribution is 0 (lb 0, positive coeff),
                # so fixing y = 1 adds exactly a_y to the rest.
                hi1 = _ceil_to_grid((rhs - minrest - a_y) / a_z)
                if hi1 is None or lo0 <= hi1:
                    continue
                coeff_y = lo0 - hi1
                violation = (
                    float(x[z])
                    + float(coeff_y) * float(x[y])
                    - float(lo0)
                )
                if violation <= min_violation:
                    continue
                cuts.append(
                    CutRow(
                        family="implied_bound",
                        coeffs={z: 1.0, y: float(coeff_y)},
                        rhs=float(lo0),
                        cert={
                            "z": z,
                            "y": y,
                            "lo0": float(lo0),
                            "hi1": float(hi1),
                            "row0": row0,
                            "row1": ["ub", r],
                        },
                    )
                )
    return cuts


# ----------------------------------------------------------------------
# the root cut loop


def run_root_cut_loop(
    base_form: StandardForm,
    lp_backend: "Callable[..., LPResult]",
    *,
    rounds: int = 8,
    max_per_round: int = 64,
    min_violation: float = 1e-4,
    tailoff: float = 1e-5,
) -> "Tuple[StandardForm, List[CutRow], Dict[str, Any]]":
    """Separate-and-validate rounds at the root; returns the tightened form.

    Each round solves the current relaxation, separates all three
    families against its fractional point over the *base* structural
    rows, exact-validates the most violated candidates with the
    checker's :func:`~repro.ilp.certify.checker.verify_cut_record`
    (against the incrementally extended exact form, so certificates
    may cite earlier cuts), and rebuilds the extended
    :class:`StandardForm`.  Stops when a round adds nothing, the round
    budget is spent, or the relaxation objective tails off.  An LP
    backend failure aborts the loop but keeps the cuts already proven
    — they are valid regardless.
    """
    from repro.ilp.certify.checker import (
        ExactForm,
        append_cut_row,
        verify_cut_record,
    )
    from repro.ilp.certify.proof import form_to_json

    stats: "Dict[str, Any]" = {
        "enabled": True,
        "rounds": 0,
        "total": 0,
        "cuts_added": {},
        "cuts_forfeited": 0,
        "root_lp_solves": 0,
        "root_obj_before": None,
        "root_obj_after": None,
    }
    exact = ExactForm.from_header(form_to_json(base_form))
    graph = build_conflict_graph(base_form)
    accepted: "List[CutRow]" = []
    seen: "Set[Tuple]" = set()
    form = base_form
    last_obj: "Optional[float]" = None
    for _ in range(max(0, rounds)):
        try:
            lp = lp_backend(form, form.lb, form.ub)
        except SolverError:
            break  # keep proven cuts; the tree search handles the rest
        stats["root_lp_solves"] += 1
        if lp.status is not SolveStatus.OPTIMAL or lp.values is None:
            break
        obj = float(lp.objective if lp.objective is not None else 0.0)
        if stats["root_obj_before"] is None:
            stats["root_obj_before"] = obj
        stats["root_obj_after"] = obj
        if (
            last_obj is not None
            and obj - last_obj < tailoff * (1.0 + abs(last_obj))
        ):
            break
        last_obj = obj
        x = _values_vector(lp.values, base_form.num_vars)
        candidates = (
            separate_cover_cuts(base_form, x, min_violation=min_violation)
            + separate_clique_cuts(
                base_form, x, graph, min_violation=min_violation
            )
            + separate_implied_bound_cuts(
                base_form, x, min_violation=min_violation
            )
        )
        candidates = [c for c in candidates if c.key() not in seen]
        candidates.sort(key=lambda c: -c.violation(x))
        added = 0
        for cand in candidates[: max(1, max_per_round)]:
            if not all(
                math.isfinite(v) for v in cand.coeffs.values()
            ) or not math.isfinite(cand.rhs):
                stats["cuts_forfeited"] += 1
                continue
            record = cand.proof_record(len(accepted))
            reason = verify_cut_record(exact, record)
            if reason is not None:
                # Float-side separation disagreed with the exact check:
                # drop the candidate honestly (it never reaches the
                # model or the proof log).
                stats["cuts_forfeited"] += 1
                continue
            append_cut_row(exact, record)
            accepted.append(cand)
            seen.add(cand.key())
            families = stats["cuts_added"]
            families[cand.family] = families.get(cand.family, 0) + 1
            added += 1
        stats["rounds"] += 1
        if not added:
            break
        form = extend_standard_form(
            base_form, [c.as_dict() for c in accepted]
        )
    if accepted:
        # Measure the tightened relaxation (and warm the kernel on the
        # final extended form the tree search will solve).
        try:
            lp = lp_backend(form, form.lb, form.ub)
        except SolverError:
            lp = None
        else:
            stats["root_lp_solves"] += 1
        if (
            lp is not None
            and lp.status is SolveStatus.OPTIMAL
            and lp.objective is not None
        ):
            stats["root_obj_after"] = float(lp.objective)
    stats["total"] = len(accepted)
    return form, accepted, stats
