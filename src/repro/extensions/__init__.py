"""Extensions beyond the paper's base model.

The paper's Section 3.3 deliberately omits, "for the sake of clarity",
pipelining, chaining and multi-cycle functional units, noting the
formulation "is easily extendible to incorporate those features"; its
Section 10 defers register estimation.  This package supplies those
extensions:

* :mod:`~repro.extensions.splitting` — operation-granularity
  partitioning ("each operation in the specification may be modeled as
  a task in our system");
* :mod:`~repro.extensions.multicycle` — start-time semantics for FUs
  with latency > 1, pipelined or not (dependency and busy-time
  constraints generalize eqs 7-8);
* :mod:`~repro.extensions.chaining` — same-step chaining of dependent
  operations whose combined delay fits the clock period;
* :mod:`~repro.extensions.registers` — register (live-value)
  estimation per temporal segment, the quantity a flip-flop resource
  constraint would bound;
* :mod:`~repro.extensions.registers_ilp` — that bound as actual model
  constraints (the paper's Section-10 program, Gebotys-style);
* :mod:`~repro.extensions.buses` — per-step operand-traffic (bus)
  capacity constraints, the other Section-10 resource.
"""

from repro.extensions.splitting import explode_tasks
from repro.extensions.multicycle import (
    MulticycleChecker,
    build_multicycle_model,
    compute_multicycle_mobility,
    decode_multicycle,
)
from repro.extensions.chaining import build_chaining_model, chainable_pairs
from repro.extensions.registers import (
    estimate_registers,
    live_values_per_step,
    peak_registers,
)
from repro.extensions.registers_ilp import (
    add_register_constraints,
    build_register_model,
    minimum_feasible_registers,
)
from repro.extensions.buses import (
    add_bus_constraints,
    build_bus_model,
    operand_counts,
)

__all__ = [
    "explode_tasks",
    "build_multicycle_model",
    "compute_multicycle_mobility",
    "decode_multicycle",
    "MulticycleChecker",
    "build_chaining_model",
    "chainable_pairs",
    "estimate_registers",
    "live_values_per_step",
    "peak_registers",
    "add_register_constraints",
    "build_register_model",
    "minimum_feasible_registers",
    "add_bus_constraints",
    "build_bus_model",
    "operand_counts",
]
