"""Operator chaining: dependent operations sharing a control step.

With chaining, a dependency ``i1 -> i2`` may be scheduled in the *same*
control step provided the combined combinational delay of the chosen
functional units fits within the clock period.  The paper defers this
feature to the Gebotys/OSCAR treatments it cites; here it is a drop-in
replacement for the eq-8 family: the pairwise forbidden set simply
changes from ``j2 <= j1`` to ``j2 < j1``, plus ``j2 == j1`` for
(k1, k2) pairs whose summed delay exceeds the clock.

Only single-link chains are modeled (a chain of three would need the
transitive delay, which the pairwise form cannot see) — matching what
the 1990s ILP formulations did.  Same-step same-instance placements
are already impossible via eq 7.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ilp.expr import lin_sum
from repro.ilp.model import Model
from repro.core.constraints import combine, partitioning, synthesis, tightening
from repro.core.formulation import FormulationOptions
from repro.core.objective import set_objective
from repro.core.spec import ProblemSpec
from repro.core.variables import VariableSpace, build_variables


def chainable_pairs(spec: ProblemSpec, clock_ns: float):
    """Yield ``(i1, i2, k1, k2)`` combos that may share a step.

    A combination is chainable when ``delay(k1) + delay(k2) <= clock``.
    """
    for (i1, i2) in spec.op_edges():
        for k1 in spec.op_fus[i1]:
            d1 = spec.allocation.instance(k1).model.delay_ns
            for k2 in spec.op_fus[i2]:
                d2 = spec.allocation.instance(k2).model.delay_ns
                if d1 + d2 <= clock_ns:
                    yield (i1, i2, k1, k2)


def build_chaining_model(
    spec: ProblemSpec,
    clock_ns: float,
    options: "Optional[FormulationOptions]" = None,
) -> "Tuple[Model, VariableSpace]":
    """Build the full model with chaining-aware dependency constraints.

    Everything except the eq-8 family is identical to
    :func:`repro.core.formulation.build_model`.
    """
    if options is None:
        options = FormulationOptions()
    from repro.core.constraints import linearize

    model = Model(
        f"tps-chain-{spec.graph.name}-N{spec.n_partitions}-L{spec.relaxation}"
    )
    space = build_variables(
        model,
        spec,
        product_vars_integer=linearize.product_vars_need_integrality(
            options.linearization
        ),
    )

    partitioning.add_uniqueness(model, spec, space)
    partitioning.add_temporal_order(model, spec, space)
    partitioning.add_memory(model, spec, space)
    if options.tighten:
        tightening.add_tight_w_definition(model, spec, space)
        tightening.add_w_source_cut(model, spec, space)
        tightening.add_w_sink_cut(model, spec, space)
        tightening.add_w_colocation_cut(model, spec, space)
    else:
        partitioning.add_base_w_definition(model, spec, space, options.linearization)

    synthesis.add_unique_assignment(model, spec, space)
    synthesis.add_fu_exclusivity(model, spec, space)
    _add_chaining_dependencies(model, spec, space, clock_ns)

    combine.add_o_definition(model, spec, space)
    combine.add_u_linkage(model, spec, space, options.linearization)
    combine.add_resource_capacity(model, spec, space)
    combine.add_control_step_activity(model, spec, space)
    combine.add_step_partition_uniqueness(model, spec, space)
    if options.tighten:
        tightening.add_u_lift(model, spec, space)

    set_objective(model, spec, space)
    return model, space


def _add_chaining_dependencies(
    model: Model, spec: ProblemSpec, space: VariableSpace, clock_ns: float
) -> None:
    """Eq 8 with chaining: forbid j2 < j1 always; j2 == j1 unless chainable."""
    chainable = set(chainable_pairs(spec, clock_ns))
    for (i1, i2) in spec.op_edges():
        steps2 = spec.op_steps[i2]
        for j1 in spec.op_steps[i1]:
            placed1 = lin_sum(space.x[(i1, j1, k1)] for k1 in spec.op_fus[i1])
            for j2 in steps2:
                if j2 > j1:
                    continue
                if j2 < j1:
                    placed2 = lin_sum(
                        space.x[(i2, j2, k2)] for k2 in spec.op_fus[i2]
                    )
                    model.add(placed1 + placed2 <= 1, tag="chain-eq8-strict")
                else:
                    # Same step: forbid only non-chainable binding pairs.
                    for k1 in spec.op_fus[i1]:
                        bad = [
                            space.x[(i2, j2, k2)]
                            for k2 in spec.op_fus[i2]
                            if (i1, i2, k1, k2) not in chainable
                        ]
                        if bad:
                            model.add(
                                space.x[(i1, j1, k1)] + lin_sum(bad) <= 1,
                                tag="chain-eq8-same-step",
                            )