"""Operation-granularity partitioning via task explosion.

The paper honours task boundaries ("a task cannot be split across two
temporal segments") but notes the escape hatch: "If it is desired to
permit splitting of tasks across segments, then each operation in the
specification may be modeled as a task in our system. ... The entire
formulation developed in this paper will work correctly."

:func:`explode_tasks` performs exactly that transformation: every
operation becomes a single-operation task; intra-task dependency edges
become inter-task data edges whose width derives from the producing
operation's word width.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.operations import Operation
from repro.graph.taskgraph import Task, TaskGraph

#: Data units per produced word: widths are expressed in 16-bit units
#: throughout the standard benchmarks, so a 16-bit producer moves 1.
BITS_PER_UNIT = 16


def explode_tasks(graph: TaskGraph, name: "str | None" = None) -> TaskGraph:
    """Return a copy of ``graph`` where every operation is its own task.

    Exploded task names are the qualified ``task.op`` ids with the dot
    replaced by ``__`` (dots are reserved); each carries one operation
    named ``op`` of the original type and width.

    Former intra-task edges become data edges with width
    ``ceil(producer_width / 16)`` (at least 1 unit).  Former inter-task
    data edges keep their original widths.
    """
    graph.validate()
    exploded = TaskGraph(name or f"{graph.name}-exploded")
    new_name: "Dict[str, str]" = {}

    for task in graph.tasks:
        for op in task.operations:
            task_name = f"{task.name}__{op.name}"
            new_name[op.qualified(task.name)] = task_name
            single = Task(task_name)
            single.add_operation(Operation("op", op.optype, op.width))
            exploded.add_task(single)

    for task in graph.tasks:
        for (src, dst) in task.edges:
            producer = task.operation(src)
            width_units = max(1, -(-producer.width // BITS_PER_UNIT))
            exploded.add_data_edge(
                new_name[f"{task.name}.{src}"],
                "op",
                new_name[f"{task.name}.{dst}"],
                "op",
                width_units,
            )
    for edge in graph.data_edges:
        exploded.add_data_edge(
            new_name[f"{edge.src_task}.{edge.src_op}"],
            "op",
            new_name[f"{edge.dst_task}.{edge.dst_op}"],
            "op",
            edge.width,
        )
    exploded.validate()
    return exploded
