"""Register (live-value) estimation per temporal segment.

The paper's Section 3.4 notes: "In this paper, we have not considered
flip-flop resource constraints.  To consider flip-flop resources, the
formulation must estimate the number of registers necessary to
synthesize the design."  This module supplies that estimate for a
finished design — the classic maximum-live-values measure:

a value produced by operation ``i`` is *live* from the end of its
producing step until the last step in which a consumer reads it; the
registers a segment needs equal the maximum number of simultaneously
live values over the segment's steps.  Values crossing segment
boundaries live in scratch memory, not registers, so they stop being
register-live at their segment's last step (and are counted by the
scratch-memory constraint instead).

The ILP extension the paper sketches (following Gebotys' register
optimization) would bound this quantity per partition; the estimator
here is the measurement side of that, and the natural next step for a
contributor.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.analysis import combined_operation_graph
from repro.core.result import PartitionedDesign


def live_values_per_step(design: PartitionedDesign) -> "Dict[int, int]":
    """Number of register-live values at every global control step.

    A value is counted at step ``s`` if it was produced at some step
    ``< s`` (within the same segment) and is still needed by an
    intra-segment consumer at step ``>= s``.
    """
    spec = design.spec
    dag = combined_operation_graph(spec.graph)
    sched = design.schedule

    live: "Dict[int, int]" = {s: 0 for s in range(1, spec.mobility.latency_bound + 1)}
    for op_id in spec.op_ids:
        producer_step = sched.step_of(op_id)
        producer_part = design.assignment[spec.op_task[op_id]]
        same_segment_uses = [
            sched.step_of(succ)
            for succ in dag.successors(op_id)
            if design.assignment[spec.op_task[succ]] == producer_part
        ]
        if not same_segment_uses:
            continue
        last_use = max(same_segment_uses)
        for step in range(producer_step + 1, last_use + 1):
            live[step] = live.get(step, 0) + 1
    return live


def estimate_registers(design: PartitionedDesign) -> "Dict[int, int]":
    """Peak register count per (used) partition of a design."""
    live = live_values_per_step(design)
    result: "Dict[int, int]" = {}
    for p in design.partitions_used():
        steps = design.steps_of(p)
        result[p] = max((live.get(s, 0) for s in steps), default=0)
    return result


def peak_registers(design: PartitionedDesign) -> int:
    """The worst per-partition register demand of a design."""
    per_partition = estimate_registers(design)
    return max(per_partition.values(), default=0)
