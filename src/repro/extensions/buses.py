"""Bus (interconnect) constraints: the other half of Section 10.

The paper's conclusion names "registers and buses" as the remaining
resources to model.  In the RT-level template the 1990s formulations
assume (Gebotys; OSCAR), every operand an executing operation reads in
a control step travels over one bus, so the number of buses bounds the
*operand traffic per step*::

    for every step j:   sum_i  operands(i) * x[i,j,*]  <=  max_buses

which is linear in the existing variables — confirming the paper's
remark that no new variables are needed.  ``operands(i)`` is the
in-degree of the operation in the combined graph plus the number of
external inputs it reads (operations with in-degree < 2 read the
remainder from outside, since every ALU-class op is binary).

Like the register extension, this composes with the base model via
:func:`add_bus_constraints` or the convenience
:func:`build_bus_model`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SpecificationError
from repro.graph.analysis import combined_operation_graph
from repro.ilp.expr import lin_sum
from repro.ilp.model import Model
from repro.core.formulation import FormulationOptions, build_model
from repro.core.spec import ProblemSpec
from repro.core.variables import VariableSpace

#: Every arithmetic/logic operation of the template reads two operands.
OPERANDS_PER_OP = 2


def operand_counts(spec: ProblemSpec) -> "Dict[str, int]":
    """Operands each operation reads (graph inputs count too)."""
    dag = combined_operation_graph(spec.graph)
    return {
        op_id: max(OPERANDS_PER_OP, dag.in_degree(op_id))
        for op_id in spec.op_ids
    }


def add_bus_constraints(
    model: Model,
    spec: ProblemSpec,
    space: VariableSpace,
    max_buses: int,
) -> int:
    """Cap per-step operand traffic at ``max_buses``; returns row count."""
    if not isinstance(max_buses, int) or max_buses < 1:
        raise SpecificationError(f"max_buses must be an int >= 1, got {max_buses}")
    counts = operand_counts(spec)
    rows = 0
    for j in spec.steps:
        terms = []
        total_if_all = 0
        for op_id in spec.ops_at_step(j):
            weight = counts[op_id]
            total_if_all += weight
            for k in spec.op_fus[op_id]:
                terms.append(weight * space.x[(op_id, j, k)])
        if terms and total_if_all > max_buses:
            model.add(
                lin_sum(terms) <= max_buses,
                name=f"buses[{j}]",
                tag="bus-capacity",
            )
            rows += 1
    return rows


def build_bus_model(
    spec: ProblemSpec,
    max_buses: int,
    options: "Optional[FormulationOptions]" = None,
) -> "Tuple[Model, VariableSpace]":
    """The full model plus bus-capacity rows."""
    model, space = build_model(spec, options)
    add_bus_constraints(model, spec, space, max_buses)
    return model, space
