"""Register-constrained formulation: the paper's Section-10 extension.

The paper closes: "To make our model an effective tool ... we need to
add constraints to model the registers and buses used in the design.
Note however that the number of variables (which largely influence the
solution time) will not increase, as the current variable set is
enough to model the additional constraints."  This module implements
exactly that program, following the Gebotys register-modeling style
the paper cites:

For a dependency edge ``e = (i1, i2)`` the produced value is *live at
the boundary into step j* when ``i1`` executed before ``j`` and ``i2``
executes at or after ``j``.  Both facts are linear in the existing
``x`` variables, so liveness admits the same aggregated Glover-style
lower bound the paper uses for ``w`` (eq 31)::

    live[e,j] >= sum_{j1 < j} x[i1,j1,*] + sum_{j2 >= j} x[i2,j2,*] - 1

with ``live`` continuous in [0, 1] (the minimizing pressure comes from
the register-capacity constraint itself).  Bounding the sum of live
values at every step by ``max_registers`` then caps the register file
each configuration must synthesize — the flip-flop resource constraint
the base model omits.

Only *intra-segment* liveness occupies registers: a value crossing a
temporal cut lives in scratch memory (eq 3 already charges it).  When
both endpoint tasks sit in different partitions the producing value
never occupies a register past its own segment, which is guaranteed
here because tasks in different partitions use disjoint control steps
(eq 13): at any step owned by another partition, neither endpoint task
executes, and within the consumer's segment the producer has already
finished (cross-partition deps are ordered by eq 8).  The bound is
therefore safe (it may only over-count at boundary steps, never
under-count), matching the conservative style of 1990s register
estimation.

Use :func:`build_register_model` as a drop-in replacement for
:func:`repro.core.formulation.build_model` when a register budget
matters, and cross-check decoded designs with
:func:`repro.extensions.registers.estimate_registers`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import SpecificationError
from repro.ilp.expr import Var, lin_sum
from repro.ilp.model import Model
from repro.core.formulation import FormulationOptions, build_model
from repro.core.spec import ProblemSpec
from repro.core.variables import VariableSpace


def build_register_model(
    spec: ProblemSpec,
    max_registers: int,
    options: "Optional[FormulationOptions]" = None,
) -> "Tuple[Model, VariableSpace, Dict[Tuple[str, str, int], Var]]":
    """Build the full model plus per-step register-capacity constraints.

    Returns ``(model, space, live)`` where ``live`` maps
    ``(producer_op, consumer_op, step)`` to the liveness variable.

    Parameters
    ----------
    spec:
        The problem instance.
    max_registers:
        Register budget per configuration (values simultaneously live
        at any control-step boundary).
    options:
        Formulation options for the underlying model.
    """
    if not isinstance(max_registers, int) or max_registers < 0:
        raise SpecificationError(
            f"max_registers must be an int >= 0, got {max_registers}"
        )
    model, space = build_model(spec, options)
    live = add_register_constraints(model, spec, space, max_registers)
    return model, space, live


def add_register_constraints(
    model: Model,
    spec: ProblemSpec,
    space: VariableSpace,
    max_registers: int,
) -> "Dict[Tuple[str, str, int], Var]":
    """Add liveness variables and per-step register caps to ``model``.

    One continuous [0,1] variable per (dependency edge, interior step),
    lower-bounded in the eq-31 style; one capacity row per step that at
    least one edge can span.  Returns the liveness variable map.
    """
    live: "Dict[Tuple[str, str, int], Var]" = {}
    per_step: "Dict[int, list]" = {}

    for (i1, i2) in spec.op_edges():
        steps1 = spec.op_steps[i1]
        steps2 = spec.op_steps[i2]
        # The value can only be live at boundaries into steps where the
        # producer may already have run and the consumer may still run.
        lo = min(steps1) + 1
        hi = max(steps2)
        for j in range(lo, hi + 1):
            produced_before = [
                space.x[(i1, j1, k)]
                for j1 in steps1
                if j1 < j
                for k in spec.op_fus[i1]
            ]
            consumed_at_or_after = [
                space.x[(i2, j2, k)]
                for j2 in steps2
                if j2 >= j
                for k in spec.op_fus[i2]
            ]
            if not produced_before or not consumed_at_or_after:
                continue
            var = model.add_continuous01(f"live[{i1},{i2},{j}]")
            live[(i1, i2, j)] = var
            model.add(
                var
                >= lin_sum(produced_before) + lin_sum(consumed_at_or_after) - 1,
                tag="reg-liveness",
            )
            per_step.setdefault(j, []).append(var)

    for j, terms in sorted(per_step.items()):
        if len(terms) > max_registers:
            model.add(
                lin_sum(terms) <= max_registers,
                name=f"regs[{j}]",
                tag="reg-capacity",
            )
    return live


def minimum_feasible_registers(
    spec: ProblemSpec,
    options: "Optional[FormulationOptions]" = None,
    upper_bound: "Optional[int]" = None,
    time_limit_s: float = 60.0,
) -> "Optional[int]":
    """Smallest register budget for which the instance stays feasible.

    Linear scan from 0 up to ``upper_bound`` (default: the number of
    dependency edges, which can never be exceeded).  Returns ``None``
    when even the unconstrained instance is infeasible.  Uses the HiGHS
    backend for speed; intended for analysis/reports, not inner loops.
    """
    from repro.ilp.milp_backend import solve_milp_scipy
    from repro.ilp.solution import SolveStatus

    base_model, _ = build_model(spec, options)
    base = solve_milp_scipy(base_model, time_limit_s=time_limit_s)
    if base.status is not SolveStatus.OPTIMAL:
        return None

    if upper_bound is None:
        upper_bound = len(spec.op_edges())
    for budget in range(0, upper_bound + 1):
        model, _, _ = build_register_model(spec, budget, options)
        result = solve_milp_scipy(model, time_limit_s=time_limit_s)
        if result.status is SolveStatus.OPTIMAL:
            return budget
    return None
