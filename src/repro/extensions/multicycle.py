"""Multi-cycle and pipelined functional units.

The base model assumes "the latency of each functional unit is one
control step, and the result of an operation is available at the end
of the control step".  This extension generalizes, following the
OSCAR/Gebotys treatment the paper cites:

* ``x[i,j,k] = 1`` now means operation ``i`` *starts* at step ``j`` on
  instance ``k``; its result is available at the end of step
  ``j + latency(k) - 1``.
* **Dependencies**: for an edge ``i1 -> i2`` and candidate bindings,
  placements with ``j2 < j1 + latency(k1)`` are forbidden (pairwise,
  generalizing eq 8 — note the unit-latency case reduces to
  ``j2 <= j1``).
* **Busy time (non-pipelined)**: instance ``k`` is occupied for
  ``latency(k)`` consecutive steps, so for every step ``j`` the starts
  within the window ``[j - latency + 1, j]`` sum to at most one
  (generalizing eq 7).
* **Issue exclusivity (pipelined)**: a pipelined instance accepts one
  *new* operation per step (eq 7 unchanged on start steps).

This exploration is exactly the one the paper holds against Gebotys'
model ("we cannot explore the possibility of using a non-pipelined and
a pipelined multiplier in the same design"): put a ``mul16`` and a
``mul16p`` in one allocation and the model chooses per operation.

Mobility must account for latencies:
:func:`compute_multicycle_mobility` runs ASAP/ALAP with each
operation's *minimum* latency over its compatible instances (a valid
relaxation of every binding choice), so all truly available (j, k)
start pairs stay inside the variable space; the pairwise constraints
then enforce exact latencies per chosen binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.errors import SpecificationError, VerificationError
from repro.graph.analysis import combined_operation_graph
from repro.ilp.expr import lin_sum
from repro.ilp.model import Model
from repro.core.constraints import combine, partitioning, synthesis, tightening
from repro.core.formulation import FormulationOptions
from repro.core.objective import set_objective
from repro.core.spec import ProblemSpec
from repro.core.variables import VariableSpace, build_variables
from repro.core.result import PartitionedDesign


def compute_multicycle_mobility(
    graph, allocation, relaxation: int = 0
) -> "Tuple[Dict[str, int], Dict[str, int], int]":
    """ASAP/ALAP start times under per-op minimum latencies.

    Returns ``(asap, alap, latency_bound)`` over qualified op ids;
    ``latency_bound`` is the number of control steps available
    including the relaxation ``L``.
    """
    if relaxation < 0:
        raise SpecificationError("relaxation must be >= 0")
    dag = combined_operation_graph(graph)
    min_lat: "Dict[str, int]" = {}
    for node, data in dag.nodes(data=True):
        instances = allocation.instances_for(data["optype"])
        if not instances:
            raise SpecificationError(
                f"no instance can execute {data['optype']} (op {node})"
            )
        min_lat[node] = min(fu.model.latency for fu in instances)

    order = list(nx.topological_sort(dag))
    asap: "Dict[str, int]" = {}
    for node in order:
        preds = list(dag.predecessors(node))
        asap[node] = (
            1 if not preds else max(asap[p] + min_lat[p] for p in preds)
        )
    finish = max((asap[n] + min_lat[n] - 1 for n in order), default=0)
    bound = finish + relaxation
    alap: "Dict[str, int]" = {}
    for node in reversed(order):
        succs = list(dag.successors(node))
        if not succs:
            alap[node] = bound - min_lat[node] + 1
        else:
            alap[node] = min(alap[s] for s in succs) - min_lat[node]
    return asap, alap, bound


def build_multicycle_model(
    spec: ProblemSpec, options: "Optional[FormulationOptions]" = None
) -> "Tuple[Model, VariableSpace]":
    """Build the multicycle variant of the full model.

    ``spec`` is a normal :class:`~repro.core.spec.ProblemSpec`; its
    unit-latency mobility is *replaced* here by multicycle mobility, so
    create the spec with the same ``relaxation`` you want applied to
    the multicycle critical path.  Partitioning, combining and
    tightening families are reused unchanged (they do not depend on
    latency semantics); only the synthesis family differs.
    """
    if options is None:
        options = FormulationOptions()

    asap, alap, bound = compute_multicycle_mobility(
        spec.graph, spec.allocation, spec.relaxation
    )
    spec = _respecified(spec, asap, alap, bound)

    model = Model(
        f"tps-mc-{spec.graph.name}-N{spec.n_partitions}-L{spec.relaxation}"
    )
    from repro.core.constraints import linearize

    space = build_variables(
        model,
        spec,
        product_vars_integer=linearize.product_vars_need_integrality(
            options.linearization
        ),
    )

    partitioning.add_uniqueness(model, spec, space)
    partitioning.add_temporal_order(model, spec, space)
    partitioning.add_memory(model, spec, space)
    if options.tighten:
        tightening.add_tight_w_definition(model, spec, space)
        tightening.add_w_source_cut(model, spec, space)
        tightening.add_w_sink_cut(model, spec, space)
        tightening.add_w_colocation_cut(model, spec, space)
    else:
        partitioning.add_base_w_definition(model, spec, space, options.linearization)

    synthesis.add_unique_assignment(model, spec, space)
    _add_busy_exclusivity(model, spec, space)
    _add_latency_dependencies(model, spec, space)

    combine.add_o_definition(model, spec, space)
    combine.add_u_linkage(model, spec, space, options.linearization)
    combine.add_resource_capacity(model, spec, space)
    _add_busy_activity(model, spec, space)
    combine.add_step_partition_uniqueness(model, spec, space)
    if options.tighten:
        tightening.add_u_lift(model, spec, space)

    set_objective(model, spec, space)
    return model, space


def _respecified(spec: ProblemSpec, asap, alap, bound) -> ProblemSpec:
    """Clone the spec with multicycle mobility ranges installed."""
    from dataclasses import replace

    from repro.schedule.asap_alap import MobilityFrames

    mobility = MobilityFrames(
        asap=dict(asap),
        alap=dict(alap),
        latency_bound=bound,
        relaxation=spec.relaxation,
    )
    op_steps = {
        op: tuple(range(asap[op], alap[op] + 1)) for op in spec.op_ids
    }
    return replace(spec, mobility=mobility, op_steps=op_steps)


def _latency(spec: ProblemSpec, fu_name: str) -> int:
    return spec.allocation.instance(fu_name).model.latency


def _pipelined(spec: ProblemSpec, fu_name: str) -> bool:
    return spec.allocation.instance(fu_name).model.pipelined


def _busy_steps(spec: ProblemSpec, op_id: str, j: int, k: str) -> "range":
    """Steps instance ``k`` is occupied by op starting at ``j``."""
    if _pipelined(spec, k):
        return range(j, j + 1)
    return range(j, j + _latency(spec, k))


def _add_busy_exclusivity(
    model: Model, spec: ProblemSpec, space: VariableSpace
) -> None:
    """Generalized eq 7: occupancy windows on each instance are disjoint."""
    bound = spec.mobility.latency_bound
    for k in spec.fu_names:
        lat = _latency(spec, k)
        window = 1 if _pipelined(spec, k) else lat
        for j in range(1, bound + 1):
            terms = []
            for op_id in spec.ops_on_fu(k):
                for start in spec.op_steps[op_id]:
                    if start <= j <= start + window - 1:
                        terms.append(space.x[(op_id, start, k)])
            if len(terms) > 1:
                model.add(lin_sum(terms) <= 1, tag="mc-eq7-busy")
    # Results must also exist within the latency bound.
    for op_id in spec.op_ids:
        for j in spec.op_steps[op_id]:
            for k in spec.op_fus[op_id]:
                if j + _latency(spec, k) - 1 > bound:
                    model.add(
                        space.x[(op_id, j, k)] <= 0, tag="mc-latency-bound"
                    )


def _add_latency_dependencies(
    model: Model, spec: ProblemSpec, space: VariableSpace
) -> None:
    """Generalized eq 8: ``start(i2) >= start(i1) + latency(k1)``."""
    for (i1, i2) in spec.op_edges():
        for j1 in spec.op_steps[i1]:
            for k1 in spec.op_fus[i1]:
                lat1 = _latency(spec, k1)
                x1 = space.x[(i1, j1, k1)]
                late2 = [
                    space.x[(i2, j2, k2)]
                    for j2 in spec.op_steps[i2]
                    if j2 < j1 + lat1
                    for k2 in spec.op_fus[i2]
                ]
                if late2:
                    model.add(
                        x1 + lin_sum(late2) <= 1, tag="mc-eq8-dependency"
                    )


def _add_busy_activity(
    model: Model, spec: ProblemSpec, space: VariableSpace
) -> None:
    """Generalized eq 12: ``c[t,j]`` covers the whole occupancy window.

    A task is "active" at every step one of its operations occupies an
    FU, so step/partition exclusivity (eq 13) accounts for multicycle
    occupancy as well.  ``c`` variables for window steps beyond the
    start-step set are created on demand.
    """
    for op_id in spec.op_ids:
        task = spec.op_task[op_id]
        for j in spec.op_steps[op_id]:
            for k in spec.op_fus[op_id]:
                x_var = space.x[(op_id, j, k)]
                for step in _busy_steps(spec, op_id, j, k):
                    if step > spec.mobility.latency_bound:
                        continue
                    key = (task, step)
                    if key not in space.c:
                        space.c[key] = model.add_continuous01(
                            f"c[{task},{step}]"
                        )
                    model.add(space.c[key] >= x_var, tag="mc-eq12-c-lower")


@dataclass
class MulticycleChecker:
    """Semantic verifier for multicycle designs (replaces Schedule checks)."""

    spec: ProblemSpec

    def check(self, design: PartitionedDesign) -> None:
        """Raise :class:`VerificationError` on any multicycle violation."""
        spec = self.spec
        dag = combined_operation_graph(spec.graph)
        sched = design.schedule
        # The spec may carry unit-latency mobility; the binding-aware
        # latency bound is the multicycle one.
        _, _, bound = compute_multicycle_mobility(
            spec.graph, spec.allocation, spec.relaxation
        )

        busy: "Dict[Tuple[str, int], str]" = {}
        for op_id in spec.op_ids:
            placement = sched.placement(op_id)
            k = placement.fu
            fu = spec.allocation.instance(k)
            if not fu.executes(dag.nodes[op_id]["optype"]):
                raise VerificationError(f"{op_id}: incompatible FU {k}")
            finish = placement.step + fu.model.latency - 1
            if finish > bound:
                raise VerificationError(
                    f"{op_id}: finishes at {finish}, beyond bound {bound}"
                )
            for step in _busy_steps(spec, op_id, placement.step, k):
                if (k, step) in busy:
                    raise VerificationError(
                        f"instance {k} busy conflict at step {step}: "
                        f"{busy[(k, step)]} vs {op_id}"
                    )
                busy[(k, step)] = op_id

        for (i1, i2) in spec.op_edges():
            p1 = sched.placement(i1)
            lat1 = spec.allocation.instance(p1.fu).model.latency
            if sched.placement(i2).step < p1.step + lat1:
                raise VerificationError(
                    f"dependency {i1} -> {i2} violated under latency {lat1}"
                )


def decode_multicycle(
    spec: ProblemSpec, space: VariableSpace, result
) -> PartitionedDesign:
    """Decode a multicycle solve (same fundamental variables as base)."""
    from repro.core.decode import decode_solution

    asap, alap, bound = compute_multicycle_mobility(
        spec.graph, spec.allocation, spec.relaxation
    )
    return decode_solution(_respecified(spec, asap, alap, bound), space, result)
