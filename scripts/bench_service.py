#!/usr/bin/env python
"""Solve-service load benchmark: latency, shedding, caching, recovery.

Drives a real ``repro serve`` process the way production traffic would
and records what the overload story actually delivers:

* **Load phase** — a concurrent burst of mixed requests (hot repeats
  that must hit the result cache, identical concurrent submissions
  that must collapse into one solve, and more distinct slow jobs than
  the queue can hold, which must be shed with ``429`` + ``Retry-After``
  rather than crash anything).  Reports p50/p99 latency for waited
  requests, the cache hit rate, and the shed rate.
* **Drain check** — the loaded server is stopped with SIGTERM and must
  exit 0 with a journal in which every accepted job was finished or
  shed (nothing silently dropped).
* **Recovery drill** — a fresh server takes two jobs, is SIGKILLed
  mid-branch-and-bound (after the worker has written a checkpoint),
  and then — before restart — the drill flips one byte in the final
  journal line (the second job's accepted record), simulating bit rot
  landing together with the crash.  The restarted server must
  quarantine exactly that record (``quarantined_records == 1`` on the
  ready line and in ``/metrics``), still recover and finish the first
  job with a proven optimum exactly once, and answer 404 for the job
  whose acceptance rotted away.  Recovery latencies (restart-to-ready
  and restart-to-done) are recorded in the report.

Hard gates (non-zero exit): zero internal server errors, at least one
cache hit, at least one shed with a ``Retry-After`` header, a clean
SIGTERM drain with a consistent journal, and a passing recovery drill.
Latencies are *recorded, not gated* — wall-clock on shared runners is
noise, but the correctness invariants above never are.

Usage::

    python scripts/bench_service.py --quick           # CI smoke (~20 reqs)
    python scripts/bench_service.py                   # fuller burst
    python scripts/bench_service.py --json out.json   # write elsewhere
    python scripts/bench_service.py --skip-recovery   # load phase only
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import select
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.artifacts import write_snapshot  # noqa: E402

BENCH_SCHEMA = "repro.bench_service/v1"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_service.json"

FAST_SPEC = {"paper_graph": 1, "mix": "2A+2M+1S", "n_partitions": 3,
             "relaxation": 1}
WARM_SPEC = {"paper_graph": 2, "mix": "2A+2M+1S", "n_partitions": 3,
             "relaxation": 1}
SLOW_SPEC = {"paper_graph": 3, "mix": "2A+2M+1S", "n_partitions": 3,
             "relaxation": 1}


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _read_ready_line(proc: subprocess.Popen, timeout_s: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                f"server died before becoming ready (rc={proc.returncode}):\n"
                f"{proc.stderr.read()}"
            )
        readable, _, _ = select.select([proc.stdout], [], [], 0.2)
        if readable:
            return json.loads(proc.stdout.readline())
    raise SystemExit("server never produced its ready line")


def start_server(
    state_dir: Path, *extra_args: str,
) -> "tuple[subprocess.Popen, int, dict]":
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--state-dir", str(state_dir), *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(),
    )
    ready = _read_ready_line(proc)
    return proc, int(ready["port"]), ready


def request(port: int, method: str, path: str, body=None, timeout=120):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def timed_request(port, body):
    start = time.perf_counter()
    status, doc, headers = request(port, "POST", "/v1/solve", body)
    return {
        "status": status,
        "latency_s": round(time.perf_counter() - start, 4),
        "cached": bool(doc.get("cached")),
        "code": (doc.get("error") or {}).get("code"),
        "retry_after": headers.get("Retry-After"),
        "job_id": doc.get("job_id"),
    }


def percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return round(ordered[index], 4)


def journal_records(state_dir: Path):
    path = state_dir / "service.journal.jsonl"
    return [json.loads(line) for line in path.read_text().splitlines()]


def journal_consistent(state_dir: Path) -> "tuple[bool, str]":
    """Every accepted job must be finished or shed — nothing dropped."""
    records = journal_records(state_dir)
    accepted = {r["job"] for r in records if r.get("kind") == "accepted"}
    finished = [r["job"] for r in records if r.get("event") == "finished"]
    shed = {r["job"] for r in records if r.get("kind") == "shed"}
    if len(finished) != len(set(finished)):
        return False, "duplicate finished records"
    leftover = accepted - set(finished) - shed
    if leftover:
        return False, f"accepted but neither finished nor shed: {sorted(leftover)}"
    return True, f"{len(accepted)} accepted = {len(finished)} finished + {len(shed)} shed"


def run_load_phase(state_dir: Path, scale: int) -> dict:
    """Mixed concurrent burst against a small server, then SIGTERM."""
    proc, port, _ = start_server(
        state_dir, "--workers", "2", "--queue-capacity", "2",
        "--rate", "1000", "--burst", "1000", "--drain-grace", "10",
    )
    try:
        # Warm the cache with one proven answer.
        warm = timed_request(port, dict(WARM_SPEC))
        if warm["status"] != 200:
            raise SystemExit(f"warm-up solve failed: {warm}")

        tasks = []
        # Hot repeats: must be served from the cache.
        tasks += [dict(WARM_SPEC) for _ in range(6 * scale)]
        # Identical concurrent solves: must collapse via single-flight.
        tasks += [dict(FAST_SPEC) for _ in range(4 * scale)]
        # Distinct slow jobs, more than workers+queue can hold: with 2
        # workers and capacity 2 the burst runs the queue over and the
        # overflow must shed.  node_limit both bounds their runtime and
        # makes every fingerprint distinct.
        tasks += [
            {**SLOW_SPEC, "node_limit": 40 + i, "wait": False}
            for i in range(9 * scale)
        ]
        with concurrent.futures.ThreadPoolExecutor(len(tasks)) as pool:
            outcomes = list(pool.map(lambda body: timed_request(port, body),
                                     tasks))

        # Let the accepted asynchronous jobs finish before draining.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            _, metrics, _ = request(port, "GET", "/metrics")
            if metrics["jobs"]["queued"] == 0 and metrics["jobs"]["running"] == 0:
                break
            time.sleep(0.2)
        _, metrics, _ = request(port, "GET", "/metrics")

        proc.send_signal(signal.SIGTERM)
        drain_rc = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()
        proc.stderr.close()

    consistent, detail = journal_consistent(state_dir)
    waited = [o["latency_s"] for o in outcomes if o["status"] == 200]
    shed = [o for o in outcomes if o["status"] == 429]
    return {
        "requests": len(outcomes) + 1,
        "ok": sum(1 for o in outcomes if o["status"] in (200, 202)),
        "shed": len(shed),
        "shed_rate": round(len(shed) / len(outcomes), 4),
        "shed_have_retry_after": all(o["retry_after"] for o in shed),
        "cache_hits": sum(1 for o in outcomes if o["cached"]),
        "cache_hit_rate": (metrics.get("cache") or {}).get("hit_rate"),
        "singleflight_joins": (metrics.get("counters") or {}).get(
            "singleflight_joins"),
        "internal_errors": (metrics.get("counters") or {}).get(
            "internal_errors"),
        "latency_p50_s": percentile(waited, 0.50),
        "latency_p99_s": percentile(waited, 0.99),
        "drain_exit_code": drain_rc,
        "journal_consistent": consistent,
        "journal_detail": detail,
    }


def corrupt_final_journal_line(state_dir: Path) -> None:
    """Flip one byte mid-way through the journal's last record —
    bit rot arriving together with the crash."""
    path = state_dir / "service.journal.jsonl"
    lines = path.read_bytes().splitlines(keepends=True)
    last = bytearray(lines[-1])
    last[len(last) // 2] ^= 0x01
    lines[-1] = bytes(last)
    path.write_bytes(b"".join(lines))


def run_recovery_drill(state_dir: Path) -> dict:
    """SIGKILL mid-solve + bit rot in the journal, restart, demand
    quarantine of the rotten record and exactly-once completion of
    the survivor."""
    proc, port, _ = start_server(
        state_dir, "--workers", "1", "--checkpoint-every", "1",
    )
    try:
        status, doc, _ = request(
            port, "POST", "/v1/solve", {**SLOW_SPEC, "wait": False})
        if status != 202:
            return {"verdict": "fail", "reason": f"submit got {status}"}
        job_id = doc["job_id"]
        # A second distinct job, queued behind the first; its accepted
        # record is the journal's final line — the one we will rot.
        status, doc, _ = request(
            port, "POST", "/v1/solve",
            {**SLOW_SPEC, "node_limit": 50, "wait": False})
        if status != 202:
            return {"verdict": "fail", "reason": f"second submit got {status}"}
        doomed_id = doc["job_id"]
        checkpoint = state_dir / "scratch" / job_id / "checkpoint.json"
        deadline = time.monotonic() + 60
        while not checkpoint.exists():
            if time.monotonic() > deadline:
                return {"verdict": "fail", "reason": "no checkpoint appeared"}
            time.sleep(0.05)
        proc.kill()  # SIGKILL mid-branch-and-bound
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()
        proc.stderr.close()

    corrupt_final_journal_line(state_dir)

    restart_at = time.monotonic()
    proc, port, ready = start_server(state_dir, "--workers", "1")
    ready_s = round(time.monotonic() - restart_at, 4)
    try:
        recovered = int(ready.get("recovered_jobs", 0))
        quarantined = int(ready.get("quarantined_records", 0))
        deadline = time.monotonic() + 120
        final = None
        while time.monotonic() < deadline:
            status, doc, _ = request(port, "GET", f"/v1/jobs/{job_id}")
            if status == 200 and doc.get("state") == "done":
                final = doc
                break
            time.sleep(0.2)
        done_s = round(time.monotonic() - restart_at, 4)
        doomed_status, _, _ = request(port, "GET", f"/v1/jobs/{doomed_id}")
        _, metrics, _ = request(port, "GET", "/metrics")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()
        proc.stderr.close()

    if recovered < 1:
        return {"verdict": "fail", "reason": "restart recovered no jobs"}
    if quarantined != 1:
        return {"verdict": "fail",
                "reason": f"expected 1 quarantined record, got {quarantined}"}
    if (metrics.get("counters") or {}).get("quarantined_records") != 1:
        return {"verdict": "fail",
                "reason": "/metrics does not report the quarantined record"}
    if doomed_status != 404:
        return {"verdict": "fail",
                "reason": f"rotted job should be unknown (404), "
                          f"got {doomed_status}"}
    if final is None:
        return {"verdict": "fail", "reason": "recovered job never finished"}
    if final.get("outcome") != "OK" or final["solve"]["status"] != "optimal":
        return {"verdict": "fail", "reason": f"bad final result: {final}"}
    records = journal_records(state_dir)
    accepted = [r["job"] for r in records if r.get("kind") == "accepted"]
    finished = [r["job"] for r in records if r.get("event") == "finished"]
    if sorted(accepted) != sorted(set(accepted)) or sorted(finished) != sorted(
            set(finished)) or set(accepted) != set(finished):
        return {"verdict": "fail",
                "reason": f"journal not exactly-once: {accepted} vs {finished}"}
    quarantine_index = (
        state_dir / "service.journal.jsonl.quarantine" / "index.jsonl"
    )
    if not quarantine_index.exists():
        return {"verdict": "fail", "reason": "no quarantine ledger written"}
    return {
        "verdict": "pass",
        "recovered_jobs": recovered,
        "quarantined_records": quarantined,
        "restart_ready_s": ready_s,
        "restart_done_s": done_s,
        "objective": final["solve"]["objective"],
        "status": final["solve"]["status"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small burst (~20 requests) for CI smoke")
    parser.add_argument("--skip-recovery", action="store_true",
                        help="load phase only")
    parser.add_argument("--json", type=Path, default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT.name})")
    parser.add_argument("--state-root", type=Path, default=None,
                        help="where to put server state (default: temp dir)")
    args = parser.parse_args(argv)

    import tempfile
    scale = 1 if args.quick else 3
    with tempfile.TemporaryDirectory() as tmp:
        root = args.state_root or Path(tmp)
        root.mkdir(parents=True, exist_ok=True)
        print(f"load phase (scale={scale}) ...", flush=True)
        load = run_load_phase(root / "load", scale)
        print(json.dumps(load, indent=2), flush=True)
        recovery = {"verdict": "skipped"}
        if not args.skip_recovery:
            print("recovery drill (kill -9 mid-solve + journal bit rot) ...",
                  flush=True)
            recovery = run_recovery_drill(root / "recovery")
            print(json.dumps(recovery, indent=2), flush=True)

    report = {
        "schema": BENCH_SCHEMA,
        "quick": args.quick,
        "load": load,
        "recovery": recovery,
    }
    write_snapshot(args.json, report, indent=2)
    print(f"wrote {args.json}")

    failures = []
    if load["internal_errors"]:
        failures.append(f"internal_errors={load['internal_errors']}")
    if not load["cache_hits"]:
        failures.append("no cache hits")
    if not load["shed"]:
        failures.append("nothing was shed under overload")
    if not load["shed_have_retry_after"]:
        failures.append("shed response missing Retry-After")
    if load["drain_exit_code"] != 0:
        failures.append(f"drain exit code {load['drain_exit_code']}")
    if not load["journal_consistent"]:
        failures.append(f"journal inconsistent: {load['journal_detail']}")
    if not args.skip_recovery and recovery["verdict"] != "pass":
        failures.append(f"recovery drill: {recovery}")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("all service gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
