#!/usr/bin/env python
"""Solver performance benchmark: nodes/sec and LP-ms/node per table row.

Runs the paper's Table 1-4 experiment rows through the branch and bound
under each LP kernel (``incremental`` — the persistent warm-starting
model — and the historical per-call ``scipy`` backend) and reports, per
row and kernel:

* deterministic solve signature — status, objective, nodes explored,
  LP solves (must match the committed baseline exactly; any drift
  means the search changed, not just the clock);
* throughput — nodes/sec and LP milliseconds per node (compared
  against the baseline within a tolerance, 30% by default: generous
  enough for shared CI runners, tight enough to catch a real
  regression like an accidental per-node model rebuild).

Usage::

    python scripts/bench_solver.py --quick            # t3 family, CI smoke
    python scripts/bench_solver.py                    # all tables
    python scripts/bench_solver.py --quick --update-baseline
    python scripts/bench_solver.py --json out.json

Exit status is non-zero when any deterministic field drifts or any
row's nodes/sec regresses more than ``--tolerance`` below the
committed ``BENCH_solver.json`` baseline.  Regenerate the baseline
with ``--update-baseline`` after an intentional perf or search change
(on the same class of machine the comparison will run on).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.reporting.experiments import run_row, table_rows  # noqa: E402

BASELINE_SCHEMA = "repro.bench_solver/v1"
DEFAULT_BASELINE = REPO_ROOT / "BENCH_solver.json"
KERNELS = ("incremental", "scipy")

#: Fields that must match the baseline bit-for-bit: any drift means
#: the *search* changed (different tree, different answer), which a
#: perf PR must never silently do.
DETERMINISTIC_FIELDS = ("status", "objective", "nodes_explored", "lp_solves")


def bench_row(row, kernel: str, time_limit_s: float) -> dict:
    """One row under one kernel -> measured record."""
    start = time.perf_counter()
    result = run_row(row, time_limit_s=time_limit_s, lp_kernel=kernel)
    elapsed = time.perf_counter() - start
    solve = (result.get("telemetry") or {}).get("solve") or {}
    nodes = int(solve.get("nodes_explored") or 0)
    lp_solves = int(solve.get("lp_calls") or 0)
    lp_time_s = float(solve.get("lp_time_s") or 0.0)
    wall = float(solve.get("wall_time_s") or elapsed) or elapsed
    record = {
        "status": result["status"],
        "objective": result["objective"],
        "nodes_explored": nodes,
        "lp_solves": lp_solves,
        "wall_time_s": round(wall, 4),
        "nodes_per_s": round(nodes / wall, 2) if wall > 0 else None,
        "lp_ms_per_node": (
            round(1000.0 * lp_time_s / lp_solves, 4) if lp_solves else None
        ),
    }
    kernel_block = solve.get("kernel")
    if kernel_block:
        record["kernel"] = {
            "name": kernel_block.get("name"),
            "cache_hit_rate": kernel_block.get("cache_hit_rate"),
            "warm_start_hits": kernel_block.get("warm_start_hits"),
        }
    return record


def run_bench(tables, time_limit_s: float) -> dict:
    rows = {}
    for table in tables:
        for row in table_rows(table):
            for kernel in KERNELS:
                key = f"{row.key}:{kernel}"
                print(f"  bench {key} ...", flush=True)
                rows[key] = bench_row(row, kernel, time_limit_s)
    return rows


def compare(current: dict, baseline: dict, tolerance: float) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    base_rows = baseline.get("rows", {})
    for key, record in current.items():
        base = base_rows.get(key)
        if base is None:
            continue  # new row: nothing to regress against
        for field in DETERMINISTIC_FIELDS:
            if record.get(field) != base.get(field):
                failures.append(
                    f"{key}: {field} drifted "
                    f"(baseline {base.get(field)!r}, now {record.get(field)!r})"
                )
        base_nps = base.get("nodes_per_s")
        cur_nps = record.get("nodes_per_s")
        if base_nps and cur_nps and cur_nps < base_nps * (1.0 - tolerance):
            failures.append(
                f"{key}: nodes/sec regressed >{tolerance:.0%} "
                f"(baseline {base_nps}, now {cur_nps})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="bench only the t3 family (the CI smoke configuration)",
    )
    parser.add_argument(
        "--tables", default=None,
        help="comma-separated tables to bench (default: t1,t2,t3,t4)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=60.0,
        help="per-row solve time limit in seconds",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="baseline JSON path (default: BENCH_solver.json at repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional nodes/sec regression vs baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured results as the new baseline and exit 0",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="also write the measured results to this path",
    )
    args = parser.parse_args(argv)

    if args.tables:
        tables = [t.strip() for t in args.tables.split(",") if t.strip()]
    elif args.quick:
        tables = ["t3"]
    else:
        tables = ["t1", "t2", "t3", "t4"]

    rows = run_bench(tables, args.time_limit)
    payload = {
        "schema": BASELINE_SCHEMA,
        "tables": tables,
        "time_limit_s": args.time_limit,
        "tolerance": args.tolerance,
        "rows": rows,
    }

    if args.json:
        args.json.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    if args.update_baseline:
        args.baseline.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --update-baseline "
            f"to create one", file=sys.stderr,
        )
        return 2
    baseline = json.loads(args.baseline.read_text())
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"baseline schema mismatch in {args.baseline}", file=sys.stderr)
        return 2
    failures = compare(rows, baseline, args.tolerance)

    print()
    width = max(len(k) for k in rows)
    print(f"{'row':<{width}}  {'status':<10} {'nodes':>7} {'nodes/s':>10} "
          f"{'lp ms/node':>11}")
    for key, record in rows.items():
        print(
            f"{key:<{width}}  {record['status']:<10} "
            f"{record['nodes_explored']:>7} "
            f"{record['nodes_per_s'] if record['nodes_per_s'] is not None else '-':>10} "
            f"{record['lp_ms_per_node'] if record['lp_ms_per_node'] is not None else '-':>11}"
        )
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: within {args.tolerance:.0%} of baseline "
          f"({len(rows)} measurements)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
