#!/usr/bin/env python
"""Solver performance benchmark: nodes/sec and LP-ms/node per table row.

Runs the paper's Table 1-4 experiment rows through the branch and bound
under each LP kernel (``incremental`` — the persistent warm-starting
model — and the historical per-call ``scipy`` backend) and reports, per
row and kernel:

* deterministic solve signature — status, objective, nodes explored,
  LP solves (must match the committed baseline exactly; any drift
  means the search changed, not just the clock);
* throughput — nodes/sec and LP milliseconds per node (compared
  against the baseline within a tolerance, 30% by default: generous
  enough for shared CI runners, tight enough to catch a real
  regression like an accidental per-node model rebuild).

A second mode benchmarks the parallel branch and bound: ``--workers N``
runs each row sequentially and again with the frontier sharded across
``N`` worker processes, asserts the parallel optima (status +
objective) match the committed baseline exactly, and reports the
aggregate nodes/sec scaling factor.  ``--min-scaling X`` turns the
factor into a gate — but only on machines with at least ``N`` cores;
with fewer (CI runners are often single-core) the factor is physically
unreachable and the gate auto-downgrades to informational, while the
optima check always remains hard.

Usage::

    python scripts/bench_solver.py --quick            # t3 family, CI smoke
    python scripts/bench_solver.py                    # all tables
    python scripts/bench_solver.py --quick --update-baseline
    python scripts/bench_solver.py --json out.json
    python scripts/bench_solver.py --quick --workers 2            # optima gate
    python scripts/bench_solver.py --workers 4 --min-scaling 2.5  # >=4 cores
    python scripts/bench_solver.py --quick --audit                # certify rows
    python scripts/bench_solver.py --quick --audit --audit-workers 4
    python scripts/bench_solver.py --tables t3,t4 --ablation      # cuts gate

Exit status is non-zero when any deterministic field drifts or any
row's nodes/sec regresses more than ``--tolerance`` below the
committed ``BENCH_solver.json`` baseline.  Regenerate the baseline
with ``--update-baseline`` after an intentional perf or search change
(on the same class of machine the comparison will run on).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.artifacts import read_snapshot, write_snapshot  # noqa: E402
from repro.errors import ArtifactError  # noqa: E402
from repro.reporting.experiments import run_row, table_rows  # noqa: E402

BASELINE_SCHEMA = "repro.bench_solver/v1"
DEFAULT_BASELINE = REPO_ROOT / "BENCH_solver.json"


def load_baseline(path: Path) -> "dict | None":
    """Read a digest-verified baseline; None (with a message) on damage.

    Goes through the durable-artifact layer so a bit-rotted or torn
    baseline is reported as exactly that, instead of producing a
    phantom perf regression.
    """
    try:
        baseline = read_snapshot(path)
    except ArtifactError as exc:
        print(f"baseline {path} unreadable ({exc.cause}): {exc}",
              file=sys.stderr)
        return None
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"baseline schema mismatch in {path}", file=sys.stderr)
        return None
    return baseline
KERNELS = ("incremental", "scipy")

#: Fields that must match the baseline bit-for-bit: any drift means
#: the *search* changed (different tree, different answer), which a
#: perf PR must never silently do.
DETERMINISTIC_FIELDS = ("status", "objective", "nodes_explored", "lp_solves")


def bench_row(
    row,
    kernel: str,
    time_limit_s: float,
    workers: int = 1,
    cuts: bool = False,
    heuristics: bool = False,
) -> dict:
    """One row under one kernel -> measured record."""
    start = time.perf_counter()
    result = run_row(
        row,
        time_limit_s=time_limit_s,
        lp_kernel=kernel,
        workers=workers,
        cuts=cuts,
        heuristics=heuristics,
    )
    elapsed = time.perf_counter() - start
    solve = (result.get("telemetry") or {}).get("solve") or {}
    nodes = int(solve.get("nodes_explored") or 0)
    lp_solves = int(solve.get("lp_calls") or 0)
    lp_time_s = float(solve.get("lp_time_s") or 0.0)
    wall = float(solve.get("wall_time_s") or elapsed) or elapsed
    record = {
        "status": result["status"],
        "objective": result["objective"],
        "nodes_explored": nodes,
        "lp_solves": lp_solves,
        "wall_time_s": round(wall, 4),
        "nodes_per_s": round(nodes / wall, 2) if wall > 0 else None,
        "lp_ms_per_node": (
            round(1000.0 * lp_time_s / lp_solves, 4) if lp_solves else None
        ),
    }
    kernel_block = solve.get("kernel")
    if kernel_block:
        record["kernel"] = {
            "name": kernel_block.get("name"),
            "cache_hit_rate": kernel_block.get("cache_hit_rate"),
            "warm_start_hits": kernel_block.get("warm_start_hits"),
        }
    parallel_block = solve.get("parallel")
    if parallel_block:
        record["parallel"] = {
            "workers": parallel_block.get("workers"),
            "chunks_dispatched": parallel_block.get("chunks_dispatched"),
            "worker_crashes": parallel_block.get("worker_crashes"),
            "incumbent_broadcasts": parallel_block.get("incumbent_broadcasts"),
        }
    if cuts or heuristics:
        cuts_block = solve.get("cuts") or {}
        heur_block = solve.get("heuristics") or {}
        record["cuts_added"] = int(cuts_block.get("total") or 0)
        record["root_gap_closed_pct"] = _root_gap_closed_pct(
            cuts_block, record["objective"]
        )
        record["heuristic_incumbents"] = int(
            heur_block.get("dive_incumbents") or 0
        ) + int(heur_block.get("polish_incumbents") or 0)
    return record


def _root_gap_closed_pct(cuts_block: dict, objective) -> "float | None":
    """Share of the root LP -> optimum gap closed by the cut loop.

    None when the row has no finite optimum or the cut loop never
    solved the root LP; 0.0 when the root relaxation was already tight
    (no gap to close).
    """
    before = cuts_block.get("root_obj_before")
    after = cuts_block.get("root_obj_after")
    if objective is None or before is None or after is None:
        return None
    gap = float(objective) - float(before)
    if gap <= 1e-9:
        return 0.0
    return round(100.0 * (float(after) - float(before)) / gap, 2)


def run_ablation_bench(
    tables, time_limit_s: float, tolerance: float,
) -> "tuple[dict, list, list]":
    """Cuts/heuristics ablation mode: (rows, hard failures, notes).

    Every row runs twice under the incremental kernel — plain, then
    with root cutting planes and primal heuristics enabled.  The
    enabled run must reach the *identical* status and objective (the
    features may only speed the search up, never change the answer),
    and on Table 3/4 rows that solve to optimality it must explore
    strictly fewer nodes — the whole point of cutting the tree before
    searching it.  Aggregate wall time across the sweep must not
    regress beyond ``tolerance``.
    """
    rows, failures, notes = {}, [], []
    off_time = on_time = 0.0
    for table in tables:
        for row in table_rows(table):
            off_key = f"{row.key}:off"
            on_key = f"{row.key}:cuts+heur"
            print(f"  bench {off_key} ...", flush=True)
            off = bench_row(row, "incremental", time_limit_s)
            print(f"  bench {on_key} ...", flush=True)
            on = bench_row(
                row, "incremental", time_limit_s, cuts=True, heuristics=True
            )
            rows[off_key], rows[on_key] = off, on
            off_time += off["wall_time_s"]
            on_time += on["wall_time_s"]
            for field in ("status", "objective"):
                if on.get(field) != off.get(field):
                    failures.append(
                        f"{on_key}: {field} changed under cuts+heuristics "
                        f"(off {off.get(field)!r}, on {on.get(field)!r})"
                    )
            if table in ("t3", "t4") and off["status"] == "optimal":
                if on["nodes_explored"] >= off["nodes_explored"]:
                    failures.append(
                        f"{on_key}: expected strictly fewer nodes than the "
                        f"plain run (off {off['nodes_explored']}, "
                        f"on {on['nodes_explored']})"
                    )
    if off_time > 0 and on_time > off_time * (1.0 + tolerance):
        failures.append(
            f"aggregate wall time regressed >{tolerance:.0%} with "
            f"cuts+heuristics on ({off_time:.2f}s -> {on_time:.2f}s)"
        )
    else:
        notes.append(
            f"aggregate wall time {off_time:.2f}s plain -> "
            f"{on_time:.2f}s with cuts+heuristics"
        )
    return rows, failures, notes


def print_ablation_rows(rows: dict) -> None:
    width = max(len(k) for k in rows)
    print(f"{'row':<{width}}  {'status':<10} {'nodes':>7} {'wall s':>8} "
          f"{'cuts':>5} {'gap%':>6} {'heur inc':>8}")
    for key, record in rows.items():
        gap = record.get("root_gap_closed_pct")
        print(
            f"{key:<{width}}  {record['status']:<10} "
            f"{record['nodes_explored']:>7} "
            f"{record['wall_time_s']:>8} "
            f"{record.get('cuts_added', '-'):>5} "
            f"{gap if gap is not None else '-':>6} "
            f"{record.get('heuristic_incumbents', '-'):>8}"
        )


def run_bench(tables, time_limit_s: float) -> dict:
    rows = {}
    for table in tables:
        for row in table_rows(table):
            for kernel in KERNELS:
                key = f"{row.key}:{kernel}"
                print(f"  bench {key} ...", flush=True)
                rows[key] = bench_row(row, kernel, time_limit_s)
    return rows


def run_scaling_bench(
    tables, time_limit_s: float, workers: int, baseline: dict,
    min_scaling: float,
) -> "tuple[dict, list, list]":
    """Parallel scaling mode: (rows, hard failures, informational notes).

    Every row runs twice — sequentially and with ``workers`` processes.
    Parallel status/objective must match the committed incremental
    baseline exactly (hard failure otherwise: sharding the frontier
    must never change the *answer*).  The aggregate nodes/sec ratio is
    gated against ``min_scaling`` only when the machine actually has
    ``workers`` cores; on smaller machines spawned workers time-slice
    one core and the ratio is reported informationally instead.
    """
    base_rows = baseline.get("rows", {})
    rows, failures, notes = {}, [], []
    seq_nodes = seq_time = par_nodes = par_time = 0.0
    for table in tables:
        for row in table_rows(table):
            seq_key = f"{row.key}:w1"
            par_key = f"{row.key}:w{workers}"
            print(f"  bench {seq_key} ...", flush=True)
            seq = bench_row(row, "incremental", time_limit_s)
            print(f"  bench {par_key} ...", flush=True)
            par = bench_row(row, "incremental", time_limit_s, workers=workers)
            rows[seq_key], rows[par_key] = seq, par
            seq_nodes += seq["nodes_explored"]
            seq_time += seq["wall_time_s"]
            par_nodes += par["nodes_explored"]
            par_time += par["wall_time_s"]
            # The answer gate: vs the committed baseline when it has
            # this row, else vs the sequential run just measured.
            reference = base_rows.get(f"{row.key}:incremental") or seq
            for field in ("status", "objective"):
                if par.get(field) != reference.get(field):
                    failures.append(
                        f"{par_key}: {field} diverged under parallel search "
                        f"(expected {reference.get(field)!r}, "
                        f"got {par.get(field)!r})"
                    )
    scaling = None
    if seq_time > 0 and par_time > 0 and seq_nodes > 0:
        scaling = round(
            (par_nodes / par_time) / (seq_nodes / seq_time), 3
        )
    cores = os.cpu_count() or 1
    summary = (
        f"aggregate nodes/sec scaling @ {workers} workers: "
        f"{scaling if scaling is not None else 'n/a'} "
        f"(machine has {cores} cores)"
    )
    if scaling is not None and min_scaling > 0:
        if cores < workers:
            notes.append(
                f"{summary} — fewer cores than workers, "
                f"scaling gate ({min_scaling}x) downgraded to informational"
            )
        elif scaling < min_scaling:
            failures.append(
                f"{summary} — below required {min_scaling}x"
            )
        else:
            notes.append(f"{summary} — meets required {min_scaling}x")
    else:
        notes.append(summary)
    return rows, failures, notes


def run_audit_bench(
    tables, time_limit_s: float, baseline: dict, workers: int = 0,
) -> "tuple[dict, list]":
    """Certification mode: (rows, hard failures).

    Re-runs each table row under each kernel with proof logging on and
    verifies the log with the independent exact-arithmetic checker
    (:func:`repro.ilp.certify.audit_proof`).  Any row that solves to
    optimality must audit ``CERTIFIED`` — a weaker verdict means the
    logged tree does not actually prove the claimed optimum.  With
    ``workers`` each row additionally runs with the frontier sharded
    across that many processes, and the parallel verdict must be
    identical to the sequential one (sharding must never change what
    the log can prove).
    """
    import tempfile

    from repro.ilp.certify import audit_proof

    base_rows = baseline.get("rows", {})
    rows, failures = {}, []
    worker_counts = [1] + ([workers] if workers else [])
    with tempfile.TemporaryDirectory() as tmp:
        for table in tables:
            for row in table_rows(table):
                for kernel in KERNELS:
                    verdicts = {}
                    for count in worker_counts:
                        key = f"{row.key}:{kernel}:w{count}"
                        proof = Path(tmp) / f"{key.replace(':', '-')}.jsonl"
                        print(f"  audit {key} ...", flush=True)
                        result = run_row(
                            row,
                            time_limit_s=time_limit_s,
                            lp_kernel=kernel,
                            workers=count,
                            proof_path=str(proof),
                        )
                        report = audit_proof(str(proof))
                        verdicts[count] = report.verdict
                        rows[key] = {
                            "status": result["status"],
                            "objective": result["objective"],
                            "verdict": report.verdict,
                            "reason": report.reason,
                        }
                        if (
                            result["status"] == "optimal"
                            and report.verdict != "CERTIFIED"
                        ):
                            failures.append(
                                f"{key}: optimal solve audited "
                                f"{report.verdict} ({report.reason})"
                            )
                        base = base_rows.get(f"{row.key}:{kernel}")
                        if base and result["status"] != base.get("status"):
                            failures.append(
                                f"{key}: status {result['status']!r} "
                                f"diverged from baseline "
                                f"{base.get('status')!r}"
                            )
                    if len(set(verdicts.values())) > 1:
                        failures.append(
                            f"{row.key}:{kernel}: verdict differs across "
                            f"worker counts: {verdicts}"
                        )
    return rows, failures


def print_audit_rows(rows: dict) -> None:
    width = max(len(k) for k in rows)
    print(f"{'row':<{width}}  {'status':<10} {'verdict':<28} reason")
    for key, record in rows.items():
        print(
            f"{key:<{width}}  {record['status']:<10} "
            f"{record['verdict']:<28} {record['reason'] or '-'}"
        )


def compare(current: dict, baseline: dict, tolerance: float) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    base_rows = baseline.get("rows", {})
    for key, record in current.items():
        base = base_rows.get(key)
        if base is None:
            continue  # new row: nothing to regress against
        for field in DETERMINISTIC_FIELDS:
            if record.get(field) != base.get(field):
                failures.append(
                    f"{key}: {field} drifted "
                    f"(baseline {base.get(field)!r}, now {record.get(field)!r})"
                )
        base_nps = base.get("nodes_per_s")
        cur_nps = record.get("nodes_per_s")
        if base_nps and cur_nps and cur_nps < base_nps * (1.0 - tolerance):
            failures.append(
                f"{key}: nodes/sec regressed >{tolerance:.0%} "
                f"(baseline {base_nps}, now {cur_nps})"
            )
    return failures


def print_rows(rows: dict) -> None:
    width = max(len(k) for k in rows)
    print(f"{'row':<{width}}  {'status':<10} {'nodes':>7} {'nodes/s':>10} "
          f"{'lp ms/node':>11}")
    for key, record in rows.items():
        print(
            f"{key:<{width}}  {record['status']:<10} "
            f"{record['nodes_explored']:>7} "
            f"{record['nodes_per_s'] if record['nodes_per_s'] is not None else '-':>10} "
            f"{record['lp_ms_per_node'] if record['lp_ms_per_node'] is not None else '-':>11}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="bench only the t3 family (the CI smoke configuration)",
    )
    parser.add_argument(
        "--tables", default=None,
        help="comma-separated tables to bench (default: t1,t2,t3,t4)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=60.0,
        help="per-row solve time limit in seconds",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="baseline JSON path (default: BENCH_solver.json at repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional nodes/sec regression vs baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the measured results as the new baseline and exit 0",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="also write the measured results to this path",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="parallel scaling mode: bench each row at 1 and N worker "
             "processes, gate parallel optima against the baseline",
    )
    parser.add_argument(
        "--min-scaling", type=float, default=0.0, metavar="X",
        help="required aggregate nodes/sec scaling factor in --workers "
             "mode (informational when the machine has fewer cores)",
    )
    parser.add_argument(
        "--ablation", action="store_true",
        help="cuts/heuristics ablation mode: bench each row plain and "
             "with --cuts --heuristics; identical optima and strictly "
             "fewer nodes on optimal t3/t4 rows are hard gates",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="certification mode: re-run each row with proof logging "
             "and verify the log with the independent exact checker; "
             "optimal rows must audit CERTIFIED",
    )
    parser.add_argument(
        "--audit-workers", type=int, default=0, metavar="N",
        help="in --audit mode also run each row with N worker "
             "processes and require the verdict to match the "
             "sequential one",
    )
    args = parser.parse_args(argv)

    if args.tables:
        tables = [t.strip() for t in args.tables.split(",") if t.strip()]
    elif args.quick:
        tables = ["t3"]
    else:
        tables = ["t1", "t2", "t3", "t4"]

    if args.ablation:
        rows, failures, notes = run_ablation_bench(
            tables, args.time_limit, args.tolerance,
        )
        payload = {
            "schema": BASELINE_SCHEMA,
            "mode": "ablation",
            "tables": tables,
            "rows": rows,
        }
        if args.json:
            args.json.write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n"
            )
            print(f"wrote {args.json}")
        if args.update_baseline:
            # Merge into the committed baseline: ablation keys
            # (":off"/":cuts+heur") never collide with the per-kernel
            # keys the default compare mode reads.
            merged = {}
            if args.baseline.exists():
                loaded = load_baseline(args.baseline)
                if loaded is None:
                    return 2
                merged = loaded
            merged.setdefault("schema", BASELINE_SCHEMA)
            merged.setdefault("rows", {}).update(rows)
            write_snapshot(args.baseline, merged, indent=1)
            print(f"baseline updated: {args.baseline}")
        print()
        print_ablation_rows(rows)
        for note in notes:
            print(f"\nNOTE: {note}")
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nOK: cuts+heuristics ablation gates hold "
              f"({len(rows)} measurements)")
        return 0

    if args.audit:
        if args.audit_workers == 1 or args.audit_workers < 0:
            parser.error("--audit-workers must be >= 2 (1 is the "
                         "sequential run)")
        baseline = {}
        if args.baseline.exists():
            loaded = load_baseline(args.baseline)
            if loaded is None:
                return 2
            baseline = loaded
        rows, failures = run_audit_bench(
            tables, args.time_limit, baseline, workers=args.audit_workers,
        )
        if args.json:
            args.json.write_text(json.dumps({
                "schema": BASELINE_SCHEMA,
                "mode": "audit",
                "tables": tables,
                "rows": rows,
            }, indent=1, sort_keys=True) + "\n")
            print(f"wrote {args.json}")
        print()
        print_audit_rows(rows)
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nOK: all proof logs verified ({len(rows)} audits)")
        return 0

    if args.workers:
        if args.workers < 2:
            parser.error("--workers must be >= 2 (1 is the sequential run)")
        baseline = {}
        if args.baseline.exists():
            loaded = load_baseline(args.baseline)
            if loaded is None:
                return 2
            baseline = loaded
        rows, failures, notes = run_scaling_bench(
            tables, args.time_limit, args.workers, baseline,
            args.min_scaling,
        )
        if args.json:
            args.json.write_text(json.dumps({
                "schema": BASELINE_SCHEMA,
                "mode": "scaling",
                "workers": args.workers,
                "cpu_count": os.cpu_count(),
                "tables": tables,
                "rows": rows,
            }, indent=1, sort_keys=True) + "\n")
            print(f"wrote {args.json}")
        print()
        print_rows(rows)
        for note in notes:
            print(f"\nNOTE: {note}")
        if failures:
            print("\nFAIL:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"\nOK: parallel optima match ({len(rows)} measurements)")
        return 0

    rows = run_bench(tables, args.time_limit)
    payload = {
        "schema": BASELINE_SCHEMA,
        "tables": tables,
        "time_limit_s": args.time_limit,
        "tolerance": args.tolerance,
        "rows": rows,
    }

    if args.json:
        args.json.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    if args.update_baseline:
        write_snapshot(args.baseline, payload, indent=1)
        print(f"baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --update-baseline "
            f"to create one", file=sys.stderr,
        )
        return 2
    baseline = load_baseline(args.baseline)
    if baseline is None:
        return 2
    failures = compare(rows, baseline, args.tolerance)

    print()
    print_rows(rows)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: within {args.tolerance:.0%} of baseline "
          f"({len(rows)} measurements)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
