#!/usr/bin/env python3
"""Run every reproduction experiment and (re)generate EXPERIMENTS.md.

This is the document-producing twin of the pytest-benchmark harness:
it executes the same rows (Tables 1-4, Figures 3-4, Ablations A-D) and
writes the paper-vs-measured record.  Run it whenever the experiment
platform or seeds change:

    python scripts/run_experiments.py [--time-limit 60] [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import datetime
import platform
from pathlib import Path
from typing import Dict, List

from repro.graph.generators import PAPER_GRAPH_SPECS
from repro.reporting.experiments import (
    journal_to_rows,
    reference_device,
    reference_memory,
    run_row,
    table_manifest,
    table_rows,
)


def fmt_paper_time(value) -> str:
    return ">limit" if value is None else f"{value}"


#: Populated from --runner/--runner-dir/--jobs in main(); None means
#: solve in-process (the historical behavior).
RUNNER: "Dict" = {}


def measure_table(table: str, time_limit: float, **kwargs) -> "List[Dict]":
    if RUNNER:
        return measure_table_isolated(table, time_limit, **kwargs)
    rows = []
    for row in table_rows(table):
        print(f"  running {row.key} ...", flush=True)
        rows.append(run_row(row, time_limit_s=time_limit, **kwargs))
    return rows


def measure_table_isolated(table: str, time_limit: float, **kwargs) -> "List[Dict]":
    """Run one table through the process-isolated batch runner.

    Each row solves in its own resource-limited worker subprocess, so a
    pathological row costs one TIMEOUT/OOM entry instead of the sweep;
    the journal under --runner-dir is resumable after a kill
    (``repro batch --resume`` semantics apply on rerun).
    """
    from repro.runner import BatchConfig, BatchRunner, load_manifest

    # run_row kwargs the manifest path does not model (in-process-only
    # ablation knobs) are rejected loudly rather than silently ignored.
    supported = {"tighten", "branching", "plain_search", "linearization"}
    unsupported = set(kwargs) - supported
    if unsupported:
        raise SystemExit(
            f"--runner does not support measure kwargs {sorted(unsupported)}"
        )
    jobs = load_manifest(table_manifest(
        table,
        time_limit_s=time_limit,
        memory_limit_mb=RUNNER.get("memory_limit_mb"),
        # Watchdog slack over the solver's own limit: the worker also
        # spends time importing and writing artifacts.
        wall_limit_s=time_limit * 2 + 30.0,
        **kwargs,
    ))
    journal = Path(RUNNER["dir"]) / f"{table}.jsonl"
    runner = BatchRunner(
        jobs,
        journal_path=journal,
        config=BatchConfig(concurrency=RUNNER.get("jobs", 1)),
        on_event=lambda kind, payload: print(
            f"  [{table}] {kind}: {payload.get('job_id', '')}", flush=True
        ),
    )
    results = runner.run(resume=journal.exists())
    return journal_to_rows(results, table)


def md_table(rows: "List[Dict]", columns: "List[str]") -> str:
    def fmt(v):
        if v is None:
            return "-"
        if v is True:
            return "Yes"
        if v is False:
            return "No"
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    head = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(fmt(r.get(c)) for c in columns) + " |" for r in rows
    ]
    return "\n".join([head, rule, *body])


COLUMNS = [
    "key", "N", "mix", "L", "vars", "consts", "runtime_s", "status",
    "objective", "partitions_used",
    "paper_vars", "paper_consts", "paper_runtime_s", "paper_feasible",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--time-limit", type=float, default=60.0)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument(
        "--runner", action="store_true",
        help="solve each table row in a process-isolated worker via "
        "repro.runner (resource limits, watchdog, resumable journal) "
        "instead of in-process",
    )
    parser.add_argument(
        "--runner-dir", default="runner_journals",
        help="directory for per-table batch journals (with --runner); "
        "rerunning resumes completed rows from the journals",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent workers per table (with --runner)",
    )
    parser.add_argument(
        "--memory-limit-mb", type=int, default=None,
        help="per-worker RLIMIT_AS cap in MB (with --runner)",
    )
    args = parser.parse_args()
    tl = args.time_limit
    if args.runner:
        Path(args.runner_dir).mkdir(parents=True, exist_ok=True)
        RUNNER.update({
            "dir": args.runner_dir,
            "jobs": args.jobs,
            "memory_limit_mb": args.memory_limit_mb,
        })

    sections: "List[str]" = []
    sections.append("# EXPERIMENTS — paper vs measured\n")
    sections.append(
        f"Generated by `scripts/run_experiments.py` on "
        f"{datetime.date.today().isoformat()}, Python "
        f"{platform.python_version()}, time limit {tl:.0f} s per solve "
        f"(stands in for the paper's 7200 s cutoff on a 175 MHz "
        f"UltraSparc).\n"
    )
    sections.append(
        "Platform: device capacity "
        f"{reference_device().capacity} effective FGs at alpha = "
        f"{reference_device().alpha}, scratch memory "
        f"{reference_memory().size} units.  Graph seeds: "
        + ", ".join(
            f"g{n}={seed}" for n, (_, _, seed) in sorted(PAPER_GRAPH_SPECS.items())
        )
        + ".\n"
    )
    sections.append(
        "Reading guide: `runtime_s`/`status` are this machine; "
        "`paper_*` columns are the 1998 numbers.  Absolute runtimes are "
        "not comparable across 25 years of hardware and LP technology; "
        "the reproduction targets are the *feasibility pattern*, the "
        "*model-size ballpark*, and the *orderings* (tightened beats "
        "base; guided branching beats unguided).\n"
    )
    sections.append(
        "Telemetry: every row carries the solver's "
        "`repro.solve_telemetry/v7` record (DESIGN.md \u00a77) \u2014 node "
        "counters, LP call/time totals, bound, gap, the incumbent "
        "event log, the presolve reduction summary (`solve.presolve`), "
        "and the infeasibility `certificate` when a structural "
        "precheck or the presolve proved the instance infeasible "
        "before any LP ran (`stop_reason` then reads "
        "`precheck_infeasible`/`presolve_infeasible` and does not "
        "count as a limit hit).  `scripts/run_experiments.py` embeds "
        "the record in each JSON row, and the pytest-benchmark harness "
        "attaches it as `extra_info[\"telemetry\"]` plus a condensed "
        "`extra_info[\"presolve\"]` root-LP-size block "
        "(`benchmarks/conftest.py`), so it lands in `--benchmark-json` "
        "output.  Rows that hit the time limit are counted by the "
        "`hit_limit` flag, not by status string.\n"
    )
    sections.append(
        "Kernel: solves run through the incremental warm-start LP "
        "kernel (`repro.ilp.incremental`, DESIGN.md §11); "
        "`solve.kernel` in each row's telemetry records the engine "
        "(`incremental-highs`/`incremental-linprog`), warm-start hits, "
        "and the node-cache hit rate.  Perf regressions against these "
        "rows are tracked separately by `scripts/bench_solver.py` vs "
        "the committed `BENCH_solver.json` baseline: the deterministic "
        "solve signature (status/objective/nodes/LP calls) must match "
        "exactly, nodes/sec within 30%.\n"
    )
    if RUNNER:
        sections.append(
            "Execution: this run used `--runner` — every row solved in "
            "its own process-isolated worker (`repro.runner`, DESIGN.md "
            "§10) with a wall-clock watchdog at twice the solve "
            "limit"
            + (
                f" and a {RUNNER['memory_limit_mb']} MB RLIMIT_AS cap"
                if RUNNER.get("memory_limit_mb") else ""
            )
            + f", {RUNNER.get('jobs', 1)} worker(s) per table.  "
            "Per-table journals under "
            f"`{RUNNER['dir']}/` make an interrupted sweep resumable "
            "(finished rows replay from the journal, never re-solve); "
            "a row that dies at a limit lands as `TIMEOUT`/`OOM`/"
            "`CRASH` in its `outcome` column instead of aborting the "
            "sweep.\n"
        )

    print("Table 1 (base formulation, raw B&B, unguided)...")
    t1 = measure_table(
        "t1", tl, tighten=False, branching="pseudo-random", plain_search=True
    )
    sections.append("## Table 1 — base formulation (Section 5)\n")
    sections.append(md_table(t1, COLUMNS) + "\n")
    timeouts = sum(1 for r in t1 if r["hit_limit"])
    sections.append(
        f"Paper shape: 3 of 4 rows exceeded the cutoff.  Measured: "
        f"{timeouts} of {len(t1)} rows hit the limit.\n"
    )

    print("Table 2 (tightened formulation, raw B&B, unguided)...")
    t2 = measure_table(
        "t2", tl, tighten=True, branching="pseudo-random", plain_search=True
    )
    sections.append("## Table 2 — tightened constraints (Section 6)\n")
    sections.append(md_table(t2, COLUMNS) + "\n")
    s1 = sum(1 for r in t1 if not r["hit_limit"])
    s2 = sum(1 for r in t2 if not r["hit_limit"])
    speedups = []
    for r1, r2 in zip(t1, t2):
        if not r1["hit_limit"] and not r2["hit_limit"]:
            speedups.append(
                f"{r1['key'].replace('t1-', '')}: "
                f"{r1['runtime_s']:.2f}s -> {r2['runtime_s']:.2f}s"
            )
    sections.append(
        f"Paper shape: tightening turned timeouts into completions "
        f"(3 of 4 finish).  Measured: base finishes {s1}/4, tightened "
        f"finishes {s2}/4; rows finished by both speed up "
        f"({'; '.join(speedups) if speedups else 'none common'}).  "
        "Note the unguided selection baseline here is deliberately "
        "primitive (deterministic pseudo-random, standing in for "
        "lp_solve's default); the tightening gain shows fully once "
        "combined with the Section-8 heuristic — compare these rows "
        "against the same models in Tables 3-4, where every row "
        "terminates in seconds.\n"
    )

    print("Table 3 (N/L exploration, production solver)...")
    t3 = measure_table("t3", tl)
    sections.append("## Table 3 — graph 1 latency/partition exploration\n")
    sections.append(md_table(t3, COLUMNS) + "\n")
    match3 = sum(1 for r in t3 if r["feasible"] == r["paper_feasible"])
    sections.append(
        f"Feasibility column matches the paper on {match3}/4 rows "
        "(infeasible at L=0; feasible from L=1; single partition at "
        "L=3).\n"
    )

    print("Table 4 (all graphs, production solver)...")
    t4 = measure_table("t4", tl * 2)
    sections.append("## Table 4 — graphs 1-6\n")
    sections.append(md_table(t4, COLUMNS) + "\n")
    finished = sum(1 for r in t4 if not r["hit_limit"])
    match4 = sum(
        1 for r in t4
        if not r["hit_limit"] and r["feasible"] == r["paper_feasible"]
    )
    sections.append(
        f"Measured: {finished}/{len(t4)} rows terminate; feasibility "
        f"matches the paper's column on {match4}/{finished} terminated "
        "rows.  The paper's random graphs are unpublished; ours are "
        "regenerated at the published sizes with calibrated seeds, so "
        "row-level divergences are expected and recorded here.\n"
    )

    sections.append("## Figures 3 and 4\n")
    sections.append(
        "Executable counterparts live in `benchmarks/test_bench_fig3.py` "
        "(w-variable values and per-cut memory sums of the 3-task "
        "example — the t1->t3 edge is charged across both cuts) and "
        "`benchmarks/test_bench_fig4.py` (the three spurious w=1 cases "
        "of Figure 4, each eliminated by its eq-28/29/30 family already "
        "in the LP relaxation).  Both pass; see also "
        "`examples/memory_cuts.py` for the narrated version.\n"
    )

    sections.append("## Ablations\n")
    sections.append(
        "* **A (linearization)** — `benchmarks/test_bench_ablation_"
        "linearization.py`: Fortet's integer product variables enlarge "
        "the search; Glover completes at least as many rows.\n"
        "* **B (variable selection)** — `benchmarks/test_bench_ablation_"
        "branching.py`: the paper's rule completes the most rows under "
        "the raw search.\n"
        "* **C (eq-8 aggregation)** — `benchmarks/test_bench_ablation_"
        "dependencies.py`: aggregated dependencies give the same optima "
        "with fewer constraints.\n"
        "* **D (presolve)** — `benchmarks/test_bench_ablation_"
        "presolve.py`: the static presolve keeps every optimum while "
        "shrinking the root LP; the Section-5 base model shrinks most "
        "(its eq-4 rows are proven implied by eq 5), mirroring the "
        "Table 1 -> Table 2 tightening by mechanical means.\n"
    )

    Path(args.out).write_text("\n".join(sections))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
