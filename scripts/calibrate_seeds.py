#!/usr/bin/env python3
"""Search generator seeds reproducing the paper's feasibility patterns.

The paper's six random graphs are unpublished; we regenerate graphs of
the published sizes and *select the generator seed* so that each
graph's Table-3/Table-4 rows show the same Feasible/Infeasible pattern
on the pinned reference device.  This script performs that search and
prints a ``PAPER_GRAPH_SPECS`` block to paste into
``repro/graph/generators.py``.

Run:  python scripts/calibrate_seeds.py [--max-seeds 60] [--graphs 1,2,3]
"""

from __future__ import annotations

import argparse
import time

from repro.graph.analysis import critical_path_length
from repro.graph.generators import (
    PAPER_GRAPH_SPECS,
    paper_graph_config,
    random_task_graph,
)
from repro.library.catalogs import mix_from_string
from repro.reporting.experiments import reference_device, reference_memory
from repro.core.partitioner import TemporalPartitioner

# Target rows per graph: (N, L, mix, must_be_feasible).
TARGETS = {
    1: [
        (3, 0, "2A+2M+1S", False),
        (3, 1, "2A+2M+1S", True),
        (2, 2, "2A+2M+1S", True),
        (2, 3, "2A+2M+1S", True),
    ],
    2: [(4, 1, "3A+2M+2S", True)],
    3: [(3, 1, "2A+2M+2S", True)],
    4: [(2, 1, "2A+2M+2S", True), (3, 0, "2A+2M+2S", True)],
    5: [(3, 0, "2A+2M+2S", False), (2, 1, "2A+2M+2S", True)],
    6: [(3, 0, "2A+2M+2S", True), (2, 1, "2A+2M+2S", True)],
}

# Preference (not requirement): the solution at this row should use
# more than one partition, so the communication objective is non-zero
# and the experiment exercises real temporal partitioning.
PREFER_SPLIT = {
    1: (3, 1, "2A+2M+1S"),
    2: (4, 1, "3A+2M+2S"),
    3: (3, 1, "2A+2M+2S"),
    4: (2, 1, "2A+2M+2S"),
    5: (2, 1, "2A+2M+2S"),
    6: (2, 1, "2A+2M+2S"),
}


def provably_infeasible(graph, n: int, l: int, mix: str) -> bool:
    """Cheap necessary-conditions check (type counts vs step budget).

    Temporal partitions execute sequentially on disjoint control steps,
    so the whole execution has ``J = cp + L`` steps and, per operation
    type, at most ``J * (instances of that type)`` slots regardless of
    the partitioning.  Violating that (or the total-slot bound) proves
    infeasibility without building the ILP.
    """
    alloc = mix_from_string(mix)
    steps = critical_path_length(graph) + l
    counts = {}
    for _, op in graph.all_operations():
        counts[op.optype] = counts.get(op.optype, 0) + 1
    if sum(counts.values()) > steps * len(alloc):
        return True
    for optype, count in counts.items():
        if count > steps * len(alloc.instances_for(optype)):
            return True
    return False


def check_seed(number: int, seed: int, time_limit: float) -> "tuple[bool, bool]":
    """Return (pattern_matches, preferred_row_splits)."""
    config = paper_graph_config(number, seed=seed)
    graph = random_task_graph(config, name=f"graph{number}s{seed}")

    # Fast rejection: a want-feasible row that is provably infeasible.
    for (n, l, mix, want_feasible) in TARGETS[number]:
        if want_feasible and provably_infeasible(graph, n, l, mix):
            return False, False

    tp = TemporalPartitioner(
        device=reference_device(),
        memory=reference_memory(),
        backend="milp",
        time_limit_s=time_limit,
    )
    splits = False
    prefer = PREFER_SPLIT.get(number)
    for (n, l, mix, want_feasible) in TARGETS[number]:
        if not want_feasible and provably_infeasible(graph, n, l, mix):
            continue  # fast accept: the row is certainly infeasible
        outcome = tp.partition(
            graph, mix_from_string(mix), n_partitions=n, relaxation=l
        )
        if outcome.hit_limit:
            return False, False
        if outcome.feasible != want_feasible:
            return False, False
        if prefer == (n, l, mix) and outcome.design is not None:
            splits = outcome.design.num_partitions_used > 1
    return True, splits


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-seeds", type=int, default=60)
    parser.add_argument("--graphs", default="1,2,3,4,5,6")
    parser.add_argument("--time-limit", type=float, default=30.0)
    args = parser.parse_args()

    chosen = {}
    for number in (int(g) for g in args.graphs.split(",")):
        fallback = None
        found = None
        start = time.monotonic()
        for seed in range(1, args.max_seeds + 1):
            try:
                ok, splits = check_seed(number, seed, args.time_limit)
            except Exception as exc:  # infeasible-by-construction specs etc.
                print(f"graph{number} seed {seed}: error {exc}")
                continue
            if ok and splits:
                found = seed
                break
            if ok and fallback is None:
                fallback = seed
        picked = found if found is not None else fallback
        chosen[number] = picked
        kind = "split" if found is not None else ("match" if fallback else "NONE")
        print(
            f"graph{number}: seed={picked} ({kind}) "
            f"[{time.monotonic() - start:.0f}s]"
        )

    print("\nPAPER_GRAPH_SPECS = {")
    for number, picked in chosen.items():
        n_tasks, n_ops, _ = PAPER_GRAPH_SPECS[number]
        print(f"    {number}: ({n_tasks}, {n_ops}, {picked}),")
    print("}")


if __name__ == "__main__":
    main()
