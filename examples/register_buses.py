#!/usr/bin/env python3
"""Section-10 extensions in action: register and bus budgets.

The paper's conclusion sketches register and bus modeling as the step
from "formulation" to "effective tool", noting the existing variable
set suffices.  This example runs the HAL differential-equation
benchmark with progressively tighter register-file and bus budgets and
shows the knee points: generous budgets change nothing, tight ones
stretch the schedule (more control steps to lower the pressure), and
too-tight ones are proven infeasible.

Run:  python examples/register_buses.py
"""

from repro import FPGADevice, ScratchMemory, TemporalPartitioner
from repro.graph.standard import hal_diffeq
from repro.ilp.milp_backend import solve_milp_scipy
from repro.ilp.solution import SolveStatus
from repro.core.decode import decode_solution
from repro.core.spec import ProblemSpec
from repro.library.catalogs import mix_from_string
from repro.extensions.buses import build_bus_model
from repro.extensions.registers import peak_registers
from repro.extensions.registers_ilp import build_register_model


def make_spec(relaxation: int) -> ProblemSpec:
    return ProblemSpec.create(
        graph=hal_diffeq(n_tasks=2),
        allocation=mix_from_string("1A+2M+1S+1C"),
        device=FPGADevice("hal-fpga", capacity=800, alpha=0.7),
        memory=ScratchMemory(16),
        n_partitions=2,
        relaxation=relaxation,
    )


def main() -> None:
    spec = make_spec(relaxation=2)
    print(f"HAL diffeq: {spec.graph.num_operations} ops, "
          f"latency bound {spec.mobility.latency_bound} steps\n")

    print("Register budget sweep:")
    for budget in (8, 4, 3, 2, 1):
        model, space, _ = build_register_model(spec, budget)
        result = solve_milp_scipy(model, time_limit_s=60)
        if result.status is SolveStatus.OPTIMAL:
            design = decode_solution(spec, space, result)
            print(f"  R = {budget}: optimal, schedule length "
                  f"{design.schedule.length}, measured peak registers "
                  f"{peak_registers(design)}")
        else:
            print(f"  R = {budget}: {result.status.value}")

    print("\nBus budget sweep:")
    for buses in (8, 6, 4, 2):
        model, space = build_bus_model(spec, buses)
        result = solve_milp_scipy(model, time_limit_s=60)
        if result.status is SolveStatus.OPTIMAL:
            design = decode_solution(spec, space, result)
            widest = max(
                len(design.schedule.ops_at(step))
                for step in design.schedule.steps_used()
            )
            print(f"  B = {buses}: optimal, schedule length "
                  f"{design.schedule.length}, widest step {widest} ops")
        else:
            print(f"  B = {buses}: {result.status.value}")


if __name__ == "__main__":
    main()
