#!/usr/bin/env python3
"""DSP workload: temporally partitioning the elliptic wave filter.

The workloads that motivated 1990s temporal partitioning are DSP
kernels too large (or too FU-hungry) for one FPGA configuration.  This
example takes the classic 34-operation elliptic wave filter, clusters
it into pipeline tasks, and explores several functional-unit mixes on
a small device — including mixes that could never fit on the device
all at once, which is exactly the exploration the paper's explicit
binding model enables (its Section 2 critique of Gebotys' model).

Run:  python examples/dsp_pipeline.py
"""

from repro import FPGADevice, ScratchMemory, TemporalPartitioner
from repro.graph.standard import elliptic_wave_filter, fir_filter
from repro.core.explore import explore_fu_mixes
from repro.reporting.tables import render_rows


def main() -> None:
    device = FPGADevice("dsp-fpga", capacity=265, alpha=0.7)
    partitioner = TemporalPartitioner(
        device=device,
        memory=ScratchMemory(20),
        time_limit_s=120,
    )

    # The 16-tap FIR is multiplier-bound (16 muls over a critical path
    # of 5): no single configuration can provide enough multiplier
    # throughput, so the optimum reconfigures mid-filter.  The EWF, by
    # contrast, is deep and add-heavy: the tool *proves* one
    # configuration suffices (0 transfer units).
    for graph, relaxation, n in ((fir_filter(taps=16, n_tasks=4), 8, 3),
                                 (elliptic_wave_filter(n_tasks=5), 2, 2)):
        print(f"=== {graph.name}: {len(graph.tasks)} tasks, "
              f"{graph.num_operations} ops ===")
        rows = explore_fu_mixes(
            partitioner,
            graph,
            mixes=["2A+1M", "2A+2M", "3A+2M"],
            n_partitions=n,
            relaxation=relaxation,
        )
        print(render_rows(
            rows,
            columns=["fu_mix", "N", "L", "vars", "consts", "runtime_s",
                     "status", "objective", "partitions_used"],
        ))
        best = min(
            (r for r in rows if r["feasible"]),
            key=lambda r: (r["objective"], r["partitions_used"]),
            default=None,
        )
        if best is None:
            print("-> no feasible mix at this relaxation\n")
            continue
        print(f"-> best mix {best['fu_mix']}: {best['objective']} units "
              f"of inter-segment traffic on "
              f"{best['partitions_used']} segment(s)\n")


if __name__ == "__main__":
    main()
