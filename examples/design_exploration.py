#!/usr/bin/env python3
"""Design-space exploration: the paper's Table 3 narrative, replayed.

Fixes the functional-unit mix (2 adders, 2 multipliers, 1 subtracter)
for the paper's graph 1 and walks the latency-relaxation /
partition-count space exactly as Section 9 describes:

* no relaxation, 3 partitions  -> infeasible;
* relax by 1                   -> optimally partitioned;
* relax by 2, 2 partitions     -> feasible;
* relax by 3                   -> fits a single configuration even
  though 2 partitions were available in the exploration.

Also demonstrates ``minimum_feasible_relaxation``, which automates the
"keep relaxing until it fits" loop a user would run by hand.

Run:  python examples/design_exploration.py
"""

from repro import TemporalPartitioner, paper_graph
from repro.core.explore import (
    explore_latency_partitions,
    minimum_feasible_relaxation,
)
from repro.reporting.experiments import reference_device, reference_memory
from repro.reporting.tables import render_rows


def main() -> None:
    graph = paper_graph(1)
    partitioner = TemporalPartitioner(
        device=reference_device(),
        memory=reference_memory(),
        time_limit_s=120,
    )

    print(f"Graph: {graph.name} ({len(graph.tasks)} tasks, "
          f"{graph.num_operations} ops), mix 2A+2M+1S, "
          f"device capacity {reference_device().capacity} FGs\n")

    rows = explore_latency_partitions(
        partitioner, graph, "2A+2M+1S",
        points=[(3, 0), (3, 1), (2, 2), (2, 3)],
    )
    print(render_rows(
        rows,
        columns=["N", "L", "vars", "consts", "runtime_s", "status",
                 "objective", "partitions_used"],
        title="Latency/partition exploration (cf. paper Table 3):",
    ))

    for n in (3, 2, 1):
        l_min = minimum_feasible_relaxation(
            partitioner, graph, "2A+2M+1S", n_partitions=n, max_relaxation=6
        )
        if l_min is None:
            print(f"N={n}: infeasible up to L=6")
        else:
            print(f"N={n}: first feasible at L={l_min}")


if __name__ == "__main__":
    main()
