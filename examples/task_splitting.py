#!/usr/bin/env python3
"""Operation-granularity partitioning via task explosion.

The paper keeps tasks atomic but notes that modeling every operation
as its own task "will work correctly" and permits splitting.  This
example shows a case where that matters: a mixed-phase task needs an
adder *and* a multiplier, which together exceed a small device — at
task granularity the instance is infeasible, while after
:func:`repro.extensions.splitting.explode_tasks` the partitioner can
cut straight through the old task boundary.

Run:  python examples/task_splitting.py
"""

from repro import (
    FPGADevice,
    ScratchMemory,
    TaskGraphBuilder,
    TemporalPartitioner,
)
from repro.extensions.splitting import explode_tasks


def build_mixed_phase_graph():
    b = TaskGraphBuilder("mixed-phase")
    b.task("front").op("m1", "mul").op("m2", "mul").op("a1", "add")
    b.task("front").edge("m1", "a1").edge("m2", "a1")
    b.task("back").op("m3", "mul").op("a2", "add").chain("m3", "a2")
    b.data_edge("front.a1", "back.m3", width=2)
    return b.build()


def main() -> None:
    graph = build_mixed_phase_graph()
    # Multiplier: 176 FGs -> 123.2 effective; adder 18 -> 12.6.
    # Capacity 125 holds a multiplier OR adders, never both.
    device = FPGADevice("tiny-fpga", capacity=125, alpha=0.7)
    partitioner = TemporalPartitioner(
        device=device, memory=ScratchMemory(10), time_limit_s=60
    )

    print("Task granularity (tasks are atomic):")
    outcome = partitioner.partition(
        graph, "1A+1M", n_partitions=4, relaxation=4
    )
    print(f"  status: {outcome.status.value}  "
          "(each task needs add+mul together -> cannot fit)")

    print("\nOperation granularity (explode_tasks):")
    exploded = explode_tasks(graph)
    print(f"  exploded into {len(exploded.tasks)} single-op tasks")
    outcome = partitioner.partition(
        exploded, "1A+1M", n_partitions=4, relaxation=4
    )
    print(f"  status: {outcome.status.value}")
    if outcome.feasible:
        print()
        print(outcome.design.report())
        print("\nThe partitioner cut through the old task boundaries, "
              "alternating mul-only and add-only configurations.")


if __name__ == "__main__":
    main()
