#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 specification through the full flow.

Builds a five-task behavioral specification shaped like the paper's
Figure 1 (tasks with internal operation DFGs, inter-task data edges
labelled with bandwidths), then runs the Figure-2 pipeline:

    estimate N  ->  ASAP/ALAP  ->  formulate 0-1 LP  ->
    branch & bound (paper's variable selection)  ->  decode & verify

and prints the resulting temporal partitioning, per-segment synthesis
summary, and the reconfiguration-overhead estimate that motivates the
communication-minimizing objective.

Run:  python examples/quickstart.py
"""

from repro import (
    FPGADevice,
    ReconfigCostModel,
    ScratchMemory,
    TaskGraphBuilder,
    TemporalPartitioner,
)


def build_figure1_spec():
    """A Figure-1-like task graph: two sources, a join, two sinks."""
    b = TaskGraphBuilder("figure1")
    b.task("t1").op("m1", "mul").op("m2", "mul").op("a1", "add")
    b.task("t1").edge("m1", "a1").edge("m2", "a1")
    b.task("t2").op("m3", "mul").op("m4", "mul").op("s1", "sub")
    b.task("t2").edge("m3", "s1").edge("m4", "s1")
    b.task("t3").op("a2", "add").op("m5", "mul").chain("a2", "m5")
    b.task("t4").op("a3", "add").op("a4", "add").chain("a3", "a4")
    b.task("t5").op("s2", "sub").op("a5", "add").chain("s2", "a5")
    b.data_edge("t1.a1", "t3.a2", width=2)
    b.data_edge("t2.s1", "t3.a2", width=4)
    b.data_edge("t3.m5", "t4.a3", width=3)
    b.data_edge("t3.m5", "t5.s2", width=1)
    return b.build()


def main() -> None:
    graph = build_figure1_spec()
    print(f"Specification: {graph.name} — {len(graph.tasks)} tasks, "
          f"{graph.num_operations} operations")
    for (t1, t2) in graph.task_edges():
        print(f"  {t1} -> {t2}  (bandwidth {graph.bandwidth(t1, t2)})")

    # A device on which no single segment can hold an adder, a
    # multiplier AND a subtracter together (148.4 effective FGs of the
    # 1A+1M+1S mix vs 140 available) -- temporal partitioning is forced.
    device = FPGADevice("demo-fpga", capacity=140, alpha=0.7)
    partitioner = TemporalPartitioner(
        device=device,
        memory=ScratchMemory(12),
        time_limit_s=120,
    )

    outcome = partitioner.partition(graph, "1A+1M+1S", relaxation=5)
    print(f"\nModel: {outcome.model_stats['vars']} variables, "
          f"{outcome.model_stats['constraints']} constraints "
          f"(N={outcome.spec.n_partitions}, L={outcome.spec.relaxation})")
    print(f"Solver: {outcome.status.value} in {outcome.wall_time_s:.2f}s, "
          f"{outcome.solve_stats.nodes_explored} nodes")

    if not outcome.feasible:
        print("No feasible partitioning — relax L or enlarge the device.")
        return

    print()
    print(outcome.design.report())

    cost_model = ReconfigCostModel(device)
    design = outcome.design
    total_steps = sum(
        len(design.steps_of(p)) for p in design.partitions_used()
    )
    overhead = cost_model.total_time_ns(
        design.num_partitions_used, design.communication_cost(), total_steps
    )
    reconfig = cost_model.reconfiguration_overhead_ns(
        design.num_partitions_used
    )
    print(f"\nEstimated execution time: {overhead / 1000.0:.1f} us "
          f"(of which reconfiguration: {reconfig / 1000.0:.1f} us)")


if __name__ == "__main__":
    main()
