#!/usr/bin/env python3
"""Scratch-memory cuts: the paper's Figure 3, executable.

Three single-type tasks (multiplies, adds, multiplies again) on a
device too small for an adder and a multiplier to share a
configuration.  Merging t1 and t3 (both multiplier tasks) would demand
t2 sit in the same segment by temporal order, so the optimal
partitioning is forced to three segments, as in the paper's Figure 3.  The ``w[p,t1,t2]`` variables then mark, per cut ``p``,
which dependencies are alive across it — including *non-adjacent*
partitions: with t1 |cut2| t2 |cut3| t3 and an edge t1 -> t3, that
edge's data occupies scratch memory across BOTH cuts.

The example solves the instance under shrinking scratch memories: the
per-cut accounting shows cut 2 holding 7 units (t1->t2 plus t1->t3)
and cut 3 holding 6 (t2->t3 plus t1->t3) — the t1->t3 edge charged at
BOTH cuts — so Ms = 7 is feasible and Ms = 6 is not: eq. 3 in action.

Run:  python examples/memory_cuts.py
"""

from repro import (
    FPGADevice,
    ScratchMemory,
    TaskGraphBuilder,
    TemporalPartitioner,
)


def build_figure3_graph():
    b = TaskGraphBuilder("figure3")
    b.task("t1").op("m1", "mul").op("m2", "mul")
    b.task("t2").op("a1", "add").op("a2", "add").chain("a1", "a2")
    b.task("t3").op("m3", "mul").op("m4", "mul").chain("m3", "m4")
    b.data_edge("t1.m1", "t2.a1", width=3)   # t1 -> t2
    b.data_edge("t2.a2", "t3.m3", width=2)   # t2 -> t3
    b.data_edge("t1.m2", "t3.m4", width=4)   # t1 -> t3 (skips t2!)
    return b.build()


def main() -> None:
    graph = build_figure3_graph()
    # 130 FGs: a multiplier alone fits (123.2 effective), but adder
    # plus multiplier (135.8) does not.
    device = FPGADevice("fig3-fpga", capacity=130, alpha=0.7)

    print("Dependencies (bandwidth):")
    for (t1, t2) in graph.task_edges():
        print(f"  {t1} -> {t2}: {graph.bandwidth(t1, t2)}")
    print()

    for ms in (12, 7, 6):
        partitioner = TemporalPartitioner(
            device=device, memory=ScratchMemory(ms), time_limit_s=60
        )
        outcome = partitioner.partition(
            graph, "1A+1M", n_partitions=3, relaxation=3
        )
        print(f"scratch memory Ms = {ms}: {outcome.status.value}", end="")
        if not outcome.feasible:
            print("  (some cut would overflow the scratch memory)")
            continue
        design = outcome.design
        print(f", total transfer {design.communication_cost()} units, "
              f"{design.num_partitions_used} partition(s)")
        for task in design.spec.task_order:
            print(f"    {task} -> partition {design.assignment[task]}")
        for cut in range(2, design.spec.n_partitions + 1):
            crossing = [
                f"{t1}->{t2} ({design.spec.graph.bandwidth(t1, t2)})"
                for (t1, t2) in design.spec.task_edges
                if design.assignment[t1] < cut <= design.assignment[t2]
            ]
            if crossing:
                print(f"    cut {cut}: {design.cut_traffic(cut)}/{ms} used "
                      f"by {', '.join(crossing)}")
        print()


if __name__ == "__main__":
    main()
