"""Figure 3 — the w-variable/memory-cut semantics, mechanized.

The paper's Figure 3 walks a 3-task / 3-partition example: with tasks
mapped t1->p1, t2->p2, t3->p3, the variables w[2,t1,t2], w[2,t1,t3],
w[3,t1,t3], w[3,t2,t3] are 1 and each cut's memory constraint sums the
bandwidths of the dependencies alive across it — note the t1->t3 edge
is counted at BOTH cuts.

This benchmark builds exactly that instance, forces the figure's
mapping, and asserts the solved model reproduces the figure's variable
values and both cut sums; the benchmark measurement is the build+solve
time of the (tiny) model.
"""

from repro.graph.builders import TaskGraphBuilder
from repro.ilp.branch_bound import BranchAndBound, BranchAndBoundConfig
from repro.ilp.solution import SolveStatus
from repro.library.catalogs import mix_from_string
from repro.target.fpga import FPGADevice
from repro.target.memory import ScratchMemory
from repro.core.formulation import build_model
from repro.core.spec import ProblemSpec
from benchmarks.conftest import run_once


def figure3_spec():
    b = TaskGraphBuilder("fig3")
    b.task("t1").op("m1", "mul").op("m2", "mul")
    b.task("t2").op("a1", "add").op("a2", "add").chain("a1", "a2")
    b.task("t3").op("m3", "mul").op("m4", "mul").chain("m3", "m4")
    b.data_edge("t1.m1", "t2.a1", width=3)
    b.data_edge("t2.a2", "t3.m3", width=2)
    b.data_edge("t1.m2", "t3.m4", width=4)
    graph = b.build()
    return ProblemSpec.create(
        graph=graph,
        allocation=mix_from_string("1A+1M"),
        device=FPGADevice("fig3", capacity=130, alpha=0.7),
        memory=ScratchMemory(12),
        n_partitions=3,
        relaxation=3,
    )


def solve_figure3():
    spec = figure3_spec()
    model, space = build_model(spec)
    # Force the figure's mapping: t1 -> 1, t2 -> 2, t3 -> 3.
    for task, p_fixed in (("t1", 1), ("t2", 2), ("t3", 3)):
        model.add(space.y[(task, p_fixed)].to_expr() == 1)
    result = BranchAndBound(
        model,
        config=BranchAndBoundConfig(objective_is_integral=True, time_limit_s=60),
    ).solve()
    return spec, space, result


def test_figure3_w_semantics(benchmark):
    spec, space, result = run_once(benchmark, solve_figure3)
    assert result.status is SolveStatus.OPTIMAL
    values = result.values

    def w(p, t1, t2):
        return round(values[space.w[(p, t1, t2)].index])

    # The figure's four live w variables...
    assert w(2, "t1", "t2") == 1
    assert w(2, "t1", "t3") == 1
    assert w(3, "t1", "t3") == 1
    assert w(3, "t2", "t3") == 1
    # ...and the two that stay 0.
    assert w(3, "t1", "t2") == 0
    assert w(2, "t2", "t3") == 0

    # Cut sums: 3 + 4 = 7 across cut 2;  4 + 2 = 6 across cut 3.
    cut2 = 3 * w(2, "t1", "t2") + 4 * w(2, "t1", "t3") + 2 * w(2, "t2", "t3")
    cut3 = 3 * w(3, "t1", "t2") + 4 * w(3, "t1", "t3") + 2 * w(3, "t2", "t3")
    assert cut2 == 7
    assert cut3 == 6
    # Objective = total transfer = 7 + 6.
    assert result.objective == 13
