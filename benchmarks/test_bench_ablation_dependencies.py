"""Ablation C — pairwise vs aggregated dependency constraints (eq 8).

The paper generates eq 8 pairwise (one constraint per forbidden step
pair of a dependency).  Later ILP-scheduling work aggregates each
producer step against the sum of all conflicting consumer placements,
which encodes the same integer set with fewer, tighter rows.  This
ablation quantifies the difference on our models: constraint counts,
LP tightness proxy (explored nodes), and wall time — a design-choice
measurement DESIGN.md calls out.
"""

import pytest

from repro.reporting.experiments import run_row, table_rows
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = [r for r in table_rows("t3") if r.paper_feasible]
VARIANTS = [("pairwise", False), ("aggregated", True)]


@pytest.mark.parametrize("name,aggregated", VARIANTS, ids=[v[0] for v in VARIANTS])
@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_dependency_variant(benchmark, row, name, aggregated, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(
            row,
            aggregated_dependencies=aggregated,
            time_limit_s=TIME_LIMIT_S,
        ),
    )
    result["variant"] = name
    results_bucket.append(("dep", result))
    assert result["status"] == "optimal"


def test_dependency_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [r for tag, r in results_bucket if tag == "dep"]
    if not rows:
        pytest.skip("ablation rows did not run")
    print()
    print(render_rows(
        rows,
        columns=["key", "variant", "consts", "runtime_s", "nodes",
                 "objective"],
        title="Ablation C: pairwise vs aggregated eq 8:",
    ))
    by_key = {}
    for r in rows:
        by_key.setdefault(r["key"], {})[r["variant"]] = r
    for key, pair in by_key.items():
        if len(pair) == 2:
            # Same optimum either way; aggregated is never larger.
            assert pair["pairwise"]["objective"] == pair["aggregated"]["objective"]
            assert pair["aggregated"]["consts"] <= pair["pairwise"]["consts"]
