"""Figure 4 — how eqs 28-30 cut spurious w = 1 solutions.

The paper's Figure 4 considers one dependency t1 -> t2 over N = 4
partitions and the variable w[3,t1,t2], showing three placements where
no product term is 1 yet the compact linearization (eq 31) alone would
tolerate w = 1 — each killed by one specific tightening family:

1. t1 -> p1, t2 -> p2  (both before the cut)  -> cut off by eq 29;
2. t1 -> p3, t2 -> p4  (both at/after the cut) -> cut off by eq 28;
3. t1 -> p2, t2 -> p2  (same partition)        -> cut off by eq 30.

For each case we *maximize* w[3,t1,t2] subject to the tightened
constraint set with the placement pinned; the LP optimum must already
be 0 — the cuts remove the spurious solutions from the relaxation, not
just from the integer hull.  With only eq 31 in place (tighten=False
uses the eq-4/5 product definition instead, so we emulate "eq 31
alone" by dropping the three cut families), the same maximization
yields 1, demonstrating the gap the paper describes.
"""

import pytest

from repro.graph.builders import TaskGraphBuilder
from repro.ilp.model import Model
from repro.ilp.scipy_backend import solve_lp_scipy
from repro.ilp.solution import SolveStatus
from repro.ilp.standard_form import compile_standard_form
from repro.library.catalogs import mix_from_string
from repro.target.fpga import FPGADevice
from repro.target.memory import ScratchMemory
from repro.core.constraints import partitioning, tightening
from repro.core.spec import ProblemSpec
from repro.core.variables import build_variables
from benchmarks.conftest import run_once

CASES = [
    ("t2-before-cut", {"t1": 1, "t2": 2}, "eq29"),
    ("t1-after-cut", {"t1": 3, "t2": 4}, "eq28"),
    ("colocated", {"t1": 2, "t2": 2}, "eq30"),
]


def figure4_spec():
    b = TaskGraphBuilder("fig4")
    b.task("t1").op("a1", "add")
    b.task("t2").op("a2", "add")
    b.data_edge("t1.a1", "t2.a2", width=1)
    graph = b.build()
    return ProblemSpec.create(
        graph=graph,
        allocation=mix_from_string("1A"),
        device=FPGADevice("fig4", capacity=100, alpha=0.7),
        memory=ScratchMemory(10),
        n_partitions=4,
        relaxation=3,
    )


def max_w_under(placement, with_cuts: bool) -> float:
    """LP-maximize w[3,t1,t2] under eq 31 (+ cuts when requested)."""
    spec = figure4_spec()
    model = Model("fig4")
    space = build_variables(model, spec)
    partitioning.add_uniqueness(model, spec, space)
    partitioning.add_temporal_order(model, spec, space)
    tightening.add_tight_w_definition(model, spec, space)
    if with_cuts:
        tightening.add_w_source_cut(model, spec, space)
        tightening.add_w_sink_cut(model, spec, space)
        tightening.add_w_colocation_cut(model, spec, space)
    for task, p in placement.items():
        model.add(space.y[(task, p)].to_expr() == 1)
    model.set_objective(-1 * space.w[(3, "t1", "t2")])  # maximize w
    lp = solve_lp_scipy(compile_standard_form(model))
    assert lp.status is SolveStatus.OPTIMAL
    return -lp.objective


@pytest.mark.parametrize("name,placement,family", CASES,
                         ids=[c[0] for c in CASES])
def test_figure4_case(benchmark, name, placement, family):
    spurious = run_once(
        benchmark, lambda: max_w_under(placement, with_cuts=False)
    )
    cut_off = max_w_under(placement, with_cuts=True)
    # eq 31 alone tolerates the spurious w = 1; the cuts forbid it.
    assert spurious == pytest.approx(1.0, abs=1e-6)
    assert cut_off == pytest.approx(0.0, abs=1e-6)


def test_figure4_legitimate_crossing_survives(benchmark):
    # t1 -> p1, t2 -> p4 genuinely crosses cut 3: w must be allowed 1.
    value = run_once(
        benchmark, lambda: max_w_under({"t1": 1, "t2": 4}, with_cuts=True)
    )
    assert value == pytest.approx(1.0, abs=1e-6)
