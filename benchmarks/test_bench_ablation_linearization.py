"""Ablation A — Glover vs Fortet linearization (paper Section 4).

The paper chose Glover-Woolsey's linearization over Fortet's because
the former is tighter ("this has also been borne out by our
experimentations"): Glover's product variables are continuous and the
LP relaxation confines them to the product's convex hull, while
Fortet's must be declared 0-1 integer, handing branch and bound a
strictly larger integer search space.

We rebuild the *base* model of graph 1 (the formulation with explicit
``y*y`` products, where the linearization choice bites hardest) both
ways and solve with the identical raw search.  Reproduced shape:
Fortet's model has strictly more integer variables, and Glover never
needs more search nodes (typically far fewer / finishes where Fortet
times out).
"""

import pytest

from repro.reporting.experiments import run_row, table_rows
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

#: Graph-1 rows of Table 1 (base formulation).
ROWS = [r for r in table_rows("t1") if r.graph == 1]
METHODS = ["glover", "fortet"]


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_linearization(benchmark, row, method, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(
            row,
            tighten=False,
            linearization=method,
            branching="pseudo-random",
            plain_search=True,
            time_limit_s=TIME_LIMIT_S / 2,
        ),
    )
    result["linearization"] = method
    results_bucket.append(("lin", result))


def test_linearization_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [r for tag, r in results_bucket if tag == "lin"]
    if not rows:
        pytest.skip("ablation rows did not run")
    print()
    print(render_rows(
        rows,
        columns=["key", "linearization", "vars", "consts", "runtime_s",
                 "status", "nodes"],
        title="Ablation A: Glover vs Fortet (base model, raw B&B):",
    ))
    by_method = {
        m: [r for r in rows if r["linearization"] == m] for m in METHODS
    }
    glover_done = sum(1 for r in by_method["glover"] if not r["hit_limit"])
    fortet_done = sum(1 for r in by_method["fortet"] if not r["hit_limit"])
    # Glover at least matches Fortet on completions.
    assert glover_done >= fortet_done
