"""Table 1 — the base (untightened) formulation struggles.

The paper's Section 5: with the preliminary linearization (explicit
``y*y`` product variables, no cutting planes) only one of four rows
solves within its 2-hour cutoff.  We rebuild the identical model
variants and run them through the *raw* 1998-style branch and bound
(no SOS1 propagation, no leaf sub-solve, default variable selection)
under the scaled-down time limit; the reproduced shape is "most rows
hit the limit".

The paper's columns: Var / Const counts of the base model, and run
times dominated by timeouts (">7200").
"""

import pytest

from repro.reporting.experiments import run_row, table_rows
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = table_rows("t1")


@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_table1_row(benchmark, row, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(
            row,
            tighten=False,
            branching="pseudo-random",  # "leave selection to the solver"
            plain_search=True,
            time_limit_s=TIME_LIMIT_S,
        ),
    )
    results_bucket.append(("t1", result))
    # Reproduction assertion (shape, not absolute numbers): the base
    # model must be *at least as large* in constraints as products
    # imply, and carry the v product variables.
    assert result["vars"] > 0


def test_table1_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [r for tag, r in results_bucket if tag == "t1"]
    if rows:
        print()
        print(render_rows(rows, title="Table 1 (base formulation, raw B&B):"))
        # The paper's headline: the majority of rows do not finish.
        timeouts = sum(1 for r in rows if r["hit_limit"])
        assert timeouts >= len(rows) // 2
