"""Table 2 — the tightening constraints (Section 6) pay off.

Identical rows to Table 1 but with the Section-6 package (compact
eq-31 ``w`` definition, cutting planes 28-30, eq-32 ``u`` lift) —
still the raw branch and bound with unguided variable selection.  The
paper saw three of the four rows become solvable (86 s, 4670 s, 9.7 s)
with one still timing out; the reproduced *shape* is: strictly more
rows finish than in Table 1, and matched rows finish faster.
"""

import pytest

from repro.reporting.experiments import run_row, table_rows
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = table_rows("t2")


@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_table2_row(benchmark, row, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(
            row,
            tighten=True,
            branching="pseudo-random",
            plain_search=True,
            time_limit_s=TIME_LIMIT_S,
        ),
    )
    results_bucket.append(("t2", result))
    assert result["vars"] > 0


def test_table2_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t1_rows = [r for tag, r in results_bucket if tag == "t1"]
    t2_rows = [r for tag, r in results_bucket if tag == "t2"]
    if not t2_rows:
        pytest.skip("table 2 rows did not run")
    print()
    print(render_rows(t2_rows, title="Table 2 (tightened, raw B&B):"))
    if t1_rows:
        solved_t1 = sum(1 for r in t1_rows if not r["hit_limit"])
        solved_t2 = sum(1 for r in t2_rows if not r["hit_limit"])
        print(f"\nrows finished: base {solved_t1}/{len(t1_rows)} vs "
              f"tightened {solved_t2}/{len(t2_rows)}")
        # The paper's claim: tightening strictly helps.
        assert solved_t2 >= solved_t1
