"""Ablation D — static presolve on vs off.

The paper's Table 1 -> Table 2 move shows how much formulation
tightening buys; the presolve pass recovers part of that gap
mechanically.  This ablation measures two things:

* *solve effect* — each feasible Table-3 row runs with and without
  presolve; the optimum must be identical and the reduction counts the
  search started from land in the telemetry (and the benchmark JSON's
  ``extra_info``);
* *root-LP size* — on the Table-3 reference instance the presolve's
  row reductions are measured for both the Section-5 base model and
  the Section-6 tightened model.  The base model shrinks more: its
  eq-4 ``w >= v`` rows are proven implied-redundant by eq 5, which is
  exactly the kind of slack the paper removed by hand between the two
  tables.
"""

import pytest

from repro.core.formulation import FormulationOptions, build_model
from repro.core.spec import ProblemSpec
from repro.graph.generators import paper_graph
from repro.ilp.analysis import PresolveOptions, presolve
from repro.library.catalogs import mix_from_string
from repro.reporting.experiments import (
    reference_device,
    reference_memory,
    run_row,
    table_rows,
)
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = [r for r in table_rows("t3") if r.paper_feasible]
VARIANTS = [("off", False), ("on", True)]


@pytest.mark.parametrize("name,enabled", VARIANTS, ids=[v[0] for v in VARIANTS])
@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_presolve_variant(benchmark, row, name, enabled, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(row, presolve=enabled, time_limit_s=TIME_LIMIT_S),
    )
    result["variant"] = name
    reductions = (result["telemetry"]["solve"] or {}).get("presolve")
    result["rows_removed"] = reductions["rows_removed"] if reductions else 0
    results_bucket.append(("presolve", result))
    assert result["status"] == "optimal"
    if enabled:
        assert reductions is not None
        assert reductions["rows_after"] <= reductions["rows_before"]


def _root_lp_sizes(row):
    """Presolve row reductions of the base vs tightened formulation."""
    spec = ProblemSpec.create(
        graph=paper_graph(row.graph),
        allocation=mix_from_string(row.mix),
        device=reference_device(),
        memory=reference_memory(),
        n_partitions=row.n_partitions,
        relaxation=row.relaxation,
    )
    sizes = []
    for variant, tighten in (("base", False), ("tightened", True)):
        model, _ = build_model(spec, FormulationOptions(tighten=tighten))
        res = presolve(model, PresolveOptions(eliminate=False))
        sizes.append({
            "key": row.key,
            "variant": variant,
            "rows_before": res.stats.rows_before,
            "rows_after": res.stats.rows_after,
            "rows_removed": res.stats.rows_removed,
            "nonzeros_before": res.stats.nonzeros_before,
            "nonzeros_after": res.stats.nonzeros_after,
        })
    return sizes


def test_presolve_root_lp_size(benchmark, results_bucket):
    sizes = run_once(benchmark, lambda: _root_lp_sizes(ROWS[0]))
    print()
    print(render_rows(
        sizes,
        columns=["key", "variant", "rows_before", "rows_after",
                 "rows_removed", "nonzeros_before", "nonzeros_after"],
        title="Ablation D: root-LP size after presolve:",
    ))
    base, tightened = sizes
    # Both formulations shrink; the untightened one shrinks more
    # (presolve proves its eq-4 rows implied by eq 5).
    assert base["rows_removed"] > 0
    assert tightened["rows_removed"] > 0
    assert base["rows_removed"] >= tightened["rows_removed"]


def test_presolve_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [r for tag, r in results_bucket if tag == "presolve"]
    if not rows:
        pytest.skip("ablation rows did not run")
    print()
    print(render_rows(
        rows,
        columns=["key", "variant", "consts", "rows_removed", "runtime_s",
                 "nodes", "objective"],
        title="Ablation D: presolve off vs on:",
    ))
    by_key = {}
    for r in rows:
        by_key.setdefault(r["key"], {})[r["variant"]] = r
    for key, pair in by_key.items():
        if len(pair) == 2:
            # Presolve must never change the optimum, only the path to it.
            assert pair["off"]["objective"] == pair["on"]["objective"]
            assert pair["on"]["rows_removed"] > 0
