"""Table 4 — the full result set: graphs 1-6 with the production solver.

The paper's headline table: medium graphs (up to 72 operations) are
optimally partitioned and synthesized "in very small execution times"
using the tightened model plus the Section-8 variable-selection
heuristic.  We regenerate graphs of the published sizes (seeds chosen
by ``scripts/calibrate_seeds.py`` to match each row's feasibility
pattern; divergences are recorded in EXPERIMENTS.md) and solve every
row.

The reproduced shape: every row terminates (optimal or a proven
infeasibility) within the time limit, with model sizes in the same
few-hundred-to-few-thousand range the paper reports.
"""

import pytest

from repro.reporting.experiments import run_row, table_rows
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = table_rows("t4")


@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_table4_row(benchmark, row, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(row, time_limit_s=TIME_LIMIT_S * 2),
    )
    results_bucket.append(("t4", result))
    assert result["status"] in ("optimal", "infeasible", "feasible", "timeout")


def test_table4_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [r for tag, r in results_bucket if tag == "t4"]
    if not rows:
        pytest.skip("table 4 rows did not run")
    print()
    print(render_rows(rows, title="Table 4 (all graphs, production solver):"))
    finished = sum(1 for r in rows if not r["hit_limit"])
    matched = sum(
        1 for r in rows
        if not r["hit_limit"] and r["feasible"] == r["paper_feasible"]
    )
    print(f"\nfinished {finished}/{len(rows)} rows; feasibility matches "
          f"paper on {matched}/{finished} finished rows")
    # Shape assertions: everything terminates, and a solid majority of
    # feasibility outcomes match the paper's (the graphs themselves are
    # regenerated, so exact agreement on every row is not guaranteed).
    assert finished == len(rows)
    assert matched >= (2 * finished) // 3
