"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Solves
are expensive and meaningful only as single measurements, so each
benchmark runs its experiment exactly once through pytest-benchmark's
``pedantic`` mode and *also* prints the paper-vs-measured table to the
terminal (the printed tables are the reproduction artifact;
EXPERIMENTS.md is generated from the same rows by
``scripts/run_experiments.py``).

Time limits stand in for the paper's cutoffs: the paper aborted at
7200-9000 s on a 175 MHz UltraSparc; we default to 60 s per solve,
which on this class of machine plays the same role ("did not finish in
any reasonable time").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

import pytest

#: Wall-clock budget per solve; the stand-in for the paper's ">7200 s".
TIME_LIMIT_S = 60.0


def run_once(benchmark, fn: "Callable[[], object]"):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    When the result is an experiment row carrying a ``telemetry``
    record (``repro.reporting.experiments.run_row`` attaches one), the
    record is copied onto the benchmark's ``extra_info`` so
    ``--benchmark-json`` artifacts keep the full solver trajectory
    (nodes, LP calls, incumbent events, final gap) next to the timing.
    Runs that presolved their model additionally get a ``presolve``
    entry summarizing the reduction counts and the root-LP size the
    search actually started from.
    """
    holder: "Dict[str, object]" = {}

    def wrapper():
        holder["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    result = holder["result"]
    if isinstance(result, Mapping) and "telemetry" in result:
        benchmark.extra_info["telemetry"] = result["telemetry"]
        solve = result["telemetry"].get("solve") or {}
        reductions = solve.get("presolve")
        if reductions is not None:
            benchmark.extra_info["presolve"] = {
                "rows_removed": reductions["rows_removed"],
                "vars_fixed": reductions["vars_fixed"],
                "bounds_tightened": reductions["bounds_tightened"],
                "coeffs_tightened": reductions["coeffs_tightened"],
                "root_lp_rows": reductions["rows_after"],
                "root_lp_nonzeros": reductions["nonzeros_after"],
            }
    return result


@pytest.fixture(scope="session")
def results_bucket():
    """Session-wide list collecting printed rows for the final summary."""
    return []
