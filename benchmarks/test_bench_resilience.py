"""Ablation E — resilience armor on vs off, and under chaos.

Three variants of each feasible Table-3 row:

* ``plain`` — the bare SciPy backend (no validation, no fallback);
* ``armored`` — the default ``ResilientLPBackend`` chain, which every
  production solve now runs through: this measures the steady-state
  price of validating every LP result (it should be noise next to the
  LP solves themselves, and the objective must be identical);
* ``chaos`` — seeded fault injection on the primary backend at a 20%
  rate over all fault classes: this measures what recovery costs when
  the armor actually works for a living, and asserts the recovered
  optimum still matches the fault-free one.

``degraded`` rows would mean the chain failed to recover — the
assertion keeps this benchmark a regression tripwire, not just a
stopwatch.
"""

import pytest

from repro.ilp.resilience import FAULT_KINDS, FaultPlan
from repro.reporting.experiments import run_row, table_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = [r for r in table_rows("t3") if r.paper_feasible]

VARIANTS = [
    ("plain", {"resilient": False}),
    ("armored", {"resilient": True}),
    (
        "chaos",
        {
            "resilient": True,
            "chaos": FaultPlan(
                kinds=FAULT_KINDS, rate=0.2, seed=42, slow_s=0.0
            ),
        },
    ),
]


@pytest.mark.parametrize("name,kwargs", VARIANTS, ids=[v[0] for v in VARIANTS])
@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_resilience_variant(benchmark, row, name, kwargs, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(row, time_limit_s=TIME_LIMIT_S, **kwargs),
    )
    result["variant"] = name
    resilience = (result["telemetry"]["solve"] or {}).get("resilience")
    result["lp_failures"] = (
        resilience["lp_failures"] if resilience else 0
    )
    results_bucket.append(("resilience", result))
    assert result["status"] == "optimal"
    assert result["degraded"] is False


def test_objectives_agree_across_variants(results_bucket):
    """Armored and chaotic runs must land on the plain run's optimum."""
    rows = [r for tag, r in results_bucket if tag == "resilience"]
    if not rows:
        pytest.skip("variant benchmarks did not run")
    by_key = {}
    for r in rows:
        by_key.setdefault(r["key"], {})[r["variant"]] = r["objective"]
    for key, variants in by_key.items():
        baseline = variants.get("plain")
        for name, objective in variants.items():
            assert objective == baseline, (
                f"{key}: {name} objective {objective} != plain {baseline}"
            )
