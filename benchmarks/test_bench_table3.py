"""Table 3 — latency/partition design exploration on graph 1.

The paper's Section 9 narrative with fixed FU mix 2A+2M+1S:

=====  ===  ==========  =================================
N      L    paper       meaning
=====  ===  ==========  =================================
3      0    infeasible  no slack at all
3      1    feasible    "optimally partitioned onto 3"
2      2    feasible    fits 2 partitions
2      3    feasible    fits a single configuration
=====  ===  ==========  =================================

The reproduction asserts the same feasibility column and that the
L=3 solution indeed collapses to one partition ("though 2 partitions
were used in the design space exploration"); runtimes use the full
production solver (paper branching + accelerations).
"""

import pytest

from repro.reporting.experiments import run_row, table_rows
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = table_rows("t3")


@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_table3_row(benchmark, row, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(row, time_limit_s=TIME_LIMIT_S),
    )
    results_bucket.append(("t3", result))
    # Feasibility must match the paper's Feasible column exactly.
    assert result["status"] in ("optimal", "infeasible")
    assert result["feasible"] == row.paper_feasible


def test_table3_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [r for tag, r in results_bucket if tag == "t3"]
    if not rows:
        pytest.skip("table 3 rows did not run")
    print()
    print(render_rows(rows, title="Table 3 (graph 1 N/L exploration):"))
    by_key = {r["key"]: r for r in rows}
    # L=3 (N=2): optimal design uses a single partition.
    final = by_key.get("t3-g1-N2-L3")
    if final is not None and final["feasible"]:
        assert final["partitions_used"] == 1
