"""Ablation B — variable-selection rules (paper Section 8).

The paper: "This result emphasizes that careful study into the
variable selection method must be done, rather than leave the variable
selection to the solver (which randomly chooses a variable to branch
on)."  We solve the same tightened graph-1 models under four rules
with the identical raw search (no accelerations, so the rule is the
only difference):

* ``paper``          — y by topological (t, p), 1-branch first; then u; then x;
* ``first``          — lowest-index fractional, 0-branch first;
* ``most-fractional``— closest to 0.5;
* ``pseudo-random``  — deterministic stand-in for unguided selection.

Reproduced shape: the paper's rule completes at least as many rows as
any other, with fewer explored nodes on commonly-finished rows.
"""

import pytest

from repro.reporting.experiments import run_row, table_rows
from repro.reporting.tables import render_rows
from benchmarks.conftest import TIME_LIMIT_S, run_once

ROWS = [r for r in table_rows("t3")]
RULES = ["paper", "first", "most-fractional", "pseudo-random"]


@pytest.mark.parametrize("rule", RULES)
@pytest.mark.parametrize("row", ROWS, ids=[r.key for r in ROWS])
def test_branching_rule(benchmark, row, rule, results_bucket):
    result = run_once(
        benchmark,
        lambda: run_row(
            row,
            branching=rule,
            plain_search=True,
            time_limit_s=TIME_LIMIT_S / 2,
        ),
    )
    result["rule"] = rule
    results_bucket.append(("branch", result))


def test_branching_summary(benchmark, results_bucket):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [r for tag, r in results_bucket if tag == "branch"]
    if not rows:
        pytest.skip("ablation rows did not run")
    print()
    print(render_rows(
        rows,
        columns=["key", "rule", "runtime_s", "status", "nodes", "objective"],
        title="Ablation B: branching rules (tightened model, raw B&B):",
    ))
    completions = {
        rule: sum(
            1 for r in rows if r["rule"] == rule and not r["hit_limit"]
        )
        for rule in RULES
    }
    print(f"\ncompletions per rule: {completions}")
    assert completions["paper"] == max(completions.values())
